package myrinet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sim"
)

// The network-mapping control program (§4.3): at boot, every node loads a
// mapping LCP that discovers routes to all reachable hosts by exchanging
// probe packets, then hands the static route tables to the VMMC LCP that
// replaces it. The paper stops there — its tables are static for the life
// of the machine. This reproduction additionally keeps the central
// mapper's machinery alive after boot as a background remap service
// (remap.go, a deliberate extension beyond the paper): the vmmc
// self-healing layer re-runs the probe round when the reliable link
// reports a stall, so topology changes no longer require a restart.
//
// Discovery is honest: the mapper only learns what probe packets tell it.
// A probe carries a candidate route; if it reaches a host, that host's
// mapping responder replies along the reversed ingress-port path. Routes
// that draw no reply within the timeout either dead-end or stop inside a
// switch and are extended breadth-first up to the depth limit.

// RouteTable maps a destination NIC id to the source route reaching it.
type RouteTable map[int][]byte

// Mapping message framing.
const (
	mapMagic   = 0x4D // 'M'
	mapProbe   = 1
	mapReply   = 2
	mapMsgSize = 10
)

func encodeMapMsg(typ byte, seq uint32, nicID uint32) []byte {
	b := make([]byte, mapMsgSize)
	b[0] = mapMagic
	b[1] = typ
	binary.BigEndian.PutUint32(b[2:], seq)
	binary.BigEndian.PutUint32(b[6:], nicID)
	return b
}

func decodeMapMsg(b []byte) (typ byte, seq uint32, nicID uint32, ok bool) {
	if len(b) != mapMsgSize || b[0] != mapMagic {
		return 0, 0, 0, false
	}
	return b[1], binary.BigEndian.Uint32(b[2:]), binary.BigEndian.Uint32(b[6:]), true
}

// Mapping is an in-progress or finished network-mapping run.
type Mapping struct {
	eng    *sim.Engine
	net    *Network
	tables map[int]RouteTable
	done   bool
	cond   *sim.Cond
	err    error
}

type mapReplyMsg struct {
	seq       uint32
	responder int
	ingress   []byte
}

// StartMapping boots the mapping LCP on every NIC of the network and
// probes breadth-first from each node up to maxDepth switch hops. It
// returns immediately; the run completes as the simulation executes. Use
// Wait from a process, or run the engine and then call Tables.
func StartMapping(net *Network, maxDepth int, probeTimeout sim.Time) *Mapping {
	m := &Mapping{
		eng:    net.Engine(),
		net:    net,
		tables: make(map[int]RouteTable),
		cond:   sim.NewCond(net.Engine()),
	}

	replies := sim.NewQueue[mapReplyMsg](m.eng, "map:replies")
	nics := net.NICs()

	// Mapping responders: every NIC answers probes and funnels replies to
	// the coordinator. They are killed once mapping finishes, freeing the
	// RX queues for the VMMC LCP (§4.3: "replaces the mapping LCP").
	responders := make([]*sim.Proc, len(nics))
	for _, nic := range nics {
		nic := nic
		responders[nic.ID] = m.eng.Go(fmt.Sprintf("maplcp:%d", nic.ID), func(p *sim.Proc) {
			for {
				pk := nic.RX.Get(p)
				typ, seq, id, ok := decodeMapMsg(pk.Payload)
				if !ok || !pk.CheckCRC() {
					continue
				}
				switch typ {
				case mapProbe:
					reply := encodeMapMsg(mapReply, seq, uint32(nic.ID))
					nic.Send(p, ReverseRoute(pk.Ingress), reply)
				case mapReply:
					replies.Put(mapReplyMsg{seq: seq, responder: int(id), ingress: pk.Ingress})
				}
			}
		})
	}

	m.eng.Go("map:coordinator", func(p *sim.Proc) {
		defer func() {
			for _, r := range responders {
				r.Kill()
			}
			m.done = true
			m.cond.Broadcast()
		}()
		var seq uint32
		for _, nic := range nics {
			table := RouteTable{}
			reverse := map[int][]byte{} // responder -> route back to prober
			// Breadth-first candidate routes. The empty route covers a
			// direct NIC-to-NIC cable.
			frontier := [][]byte{{}}
			for depth := 0; depth <= maxDepth && len(frontier) > 0; depth++ {
				var next [][]byte
				for _, route := range frontier {
					seq++
					nic.Send(p, route, encodeMapMsg(mapProbe, seq, uint32(nic.ID)))
					found := false
					for {
						r, ok := replies.GetTimeout(p, probeTimeout)
						if !ok {
							break
						}
						if r.seq != seq {
							continue // stale reply from a timed-out probe
						}
						if _, dup := table[r.responder]; !dup {
							table[r.responder] = append([]byte(nil), route...)
							reverse[r.responder] = ReverseRoute(r.ingress)
						}
						found = true
						break
					}
					if !found && depth < maxDepth {
						// Possibly a switch behind this prefix: extend.
						for port := 0; port < 8; port++ {
							ext := make([]byte, len(route)+1)
							copy(ext, route)
							ext[len(route)] = byte(port)
							next = append(next, ext)
						}
					}
				}
				frontier = next
			}
			m.tables[nic.ID] = table
		}
	})
	return m
}

// StartMappingCentral maps the fabric from a single host and computes
// every node's route table from the discovered tree — the way deployed
// Myrinet mapping worked: one mapper host explores, then distributes
// routes. The prober still learns only what probe packets tell it, but
// two prunings keep the search linear in the fabric size where the
// per-node prober of StartMapping is exponential:
//
//   - switch fingerprinting: the 8-port reply pattern of a switch with at
//     least one attached host identifies it uniquely (host NIC ids are
//     unique), so a route prefix whose one-hop replies match an already
//     explored switch is a walk doubling back through the fabric and is
//     not extended;
//   - silent cutoff: a prefix whose whole subtree has drawn no reply for
//     two consecutive levels is a dangling cable, not a switch chain, and
//     is abandoned (a real chain shows attached hosts along the way).
//
// The cutoff assumes hostless switches do not appear two-in-a-row, true
// of any cluster wiring that puts hosts on every switch; pathological
// fabrics should use the exhaustive StartMapping.
//
// Pairwise routes fall out of the tree: with P(h) the probe route to
// host h and R(h) the reply route back (read straight from the reply
// packet), and c the longest common switch prefix of P(i) and P(j), the
// route i->j climbs i's reply route to the divergence switch and descends
// j's probe route: R(i)[:len(P(i))-1-c] + P(j)[c:].
func StartMappingCentral(net *Network, maxDepth int, probeTimeout sim.Time) *Mapping {
	m := &Mapping{
		eng:    net.Engine(),
		net:    net,
		tables: make(map[int]RouteTable),
		cond:   sim.NewCond(net.Engine()),
	}

	replies := sim.NewQueue[mapReplyMsg](m.eng, "map:replies")
	nics := net.NICs()
	if len(nics) == 0 {
		m.done = true
		return m
	}

	responders := make([]*sim.Proc, len(nics))
	for _, nic := range nics {
		nic := nic
		responders[nic.ID] = m.eng.Go(fmt.Sprintf("maplcp:%d", nic.ID), func(p *sim.Proc) {
			for {
				pk := nic.RX.Get(p)
				typ, seq, id, ok := decodeMapMsg(pk.Payload)
				if !ok || !pk.CheckCRC() {
					continue
				}
				switch typ {
				case mapProbe:
					reply := encodeMapMsg(mapReply, seq, uint32(nic.ID))
					nic.Send(p, ReverseRoute(pk.Ingress), reply)
				case mapReply:
					// The reply's route field IS the responder->prober
					// route (the reversed probe ingress it was sent on).
					replies.Put(mapReplyMsg{seq: seq, responder: int(id), ingress: pk.Route})
				}
			}
		})
	}

	prober := nics[0]
	m.eng.Go("map:coordinator", func(p *sim.Proc) {
		defer func() {
			for _, r := range responders {
				r.Kill()
			}
			m.done = true
			m.cond.Broadcast()
		}()

		forward := map[int][]byte{} // host -> probe route from prober
		back := map[int][]byte{}    // host -> reply route to prober
		var seq uint32
		// probe sends one candidate route and waits for its reply or the
		// timeout. It reports the responder, recording first-seen routes.
		probe := func(route []byte) (int, bool) {
			seq++
			prober.Send(p, route, encodeMapMsg(mapProbe, seq, uint32(prober.ID)))
			for {
				r, ok := replies.GetTimeout(p, probeTimeout)
				if !ok {
					return 0, false
				}
				if r.seq != seq {
					continue // stale reply from a timed-out probe
				}
				if _, dup := forward[r.responder]; !dup {
					forward[r.responder] = append([]byte(nil), route...)
					back[r.responder] = append([]byte(nil), r.ingress...)
				}
				return r.responder, true
			}
		}

		centralExplore(probe, maxDepth)
		m.tables = composeCentralTables(prober.ID, forward, back)
	})
	return m
}

// centralExplore drives one central mapping round: a direct-cable check
// followed by the BFS over switch-port prefixes with fingerprint dedup and
// the silent cutoff. probe sends one candidate route and reports the
// responding host (recording routes is the caller's business, via the
// closure). Shared by the boot-time StartMappingCentral and the post-boot
// Remap service.
func centralExplore(probe func(route []byte) (int, bool), maxDepth int) {
	if _, direct := probe(nil); direct {
		return
	}
	// BFS over switch prefixes with fingerprint dedup and the silent
	// cutoff.
	type prefix struct {
		route  []byte
		silent int // consecutive reply-less levels ending here
	}
	const silentLimit = 2
	seen := map[string]bool{} // fingerprints of explored switches
	queue := []prefix{{route: nil, silent: 1}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if len(e.route) >= maxDepth {
			continue
		}
		var fp [8]int
		anyReply := false
		var silentKids [][]byte
		for port := 0; port < 8; port++ {
			ext := make([]byte, len(e.route)+1)
			copy(ext, e.route)
			ext[len(e.route)] = byte(port)
			if id, ok := probe(ext); ok {
				fp[port] = id + 1
				anyReply = true
			} else {
				fp[port] = 0
				silentKids = append(silentKids, ext)
			}
		}
		run := e.silent + 1
		if anyReply {
			key := fmt.Sprint(fp)
			if seen[key] {
				continue // a walk back into an explored switch
			}
			seen[key] = true
			run = 1
		}
		if run <= silentLimit {
			for _, k := range silentKids {
				queue = append(queue, prefix{route: k, silent: run})
			}
		}
	}
}

// composeCentralTables computes every pairwise table from one prober's
// view of the fabric. Probe routes from a fixed prober are BFS-minimal, so
// equal port prefixes mean the same switch: with P(h) the probe route to
// host h, R(h) the reply route back, and c the longest common switch
// prefix of P(i) and P(j), the route i->j climbs i's reply route to the
// divergence switch and descends j's probe route.
func composeCentralTables(proberID int, forward, back map[int][]byte) map[int]RouteTable {
	tables := make(map[int]RouteTable)
	hosts := []int{proberID}
	for h := range forward {
		if h != proberID {
			hosts = append(hosts, h)
		}
	}
	for _, i := range hosts {
		table := RouteTable{}
		for _, j := range hosts {
			if i == j {
				continue
			}
			switch {
			case i == proberID:
				table[j] = append([]byte(nil), forward[j]...)
			case j == proberID:
				table[j] = append([]byte(nil), back[i]...)
			default:
				pi, pj, ri := forward[i], forward[j], back[i]
				c := 0
				for c < len(pi)-1 && c < len(pj)-1 && pi[c] == pj[c] {
					c++
				}
				route := append([]byte(nil), ri[:len(pi)-1-c]...)
				table[j] = append(route, pj[c:]...)
			}
		}
		tables[i] = table
	}
	return tables
}

// Wait parks p until mapping completes.
func (m *Mapping) Wait(p *sim.Proc) {
	for !m.done {
		m.cond.Wait(p)
	}
}

// Done reports whether mapping has completed.
func (m *Mapping) Done() bool { return m.done }

// Tables returns the per-node route tables. It panics if mapping has not
// completed — run the engine first.
func (m *Mapping) Tables() map[int]RouteTable {
	if !m.done {
		panic("myrinet: Tables() before mapping completed")
	}
	return m.tables
}
