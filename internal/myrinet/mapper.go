package myrinet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sim"
)

// The network-mapping control program (§4.3): at boot, every node loads a
// mapping LCP that discovers routes to all reachable hosts by exchanging
// probe packets, then hands the static route tables to the VMMC LCP that
// replaces it. No dynamic remapping happens afterwards; topology changes
// require a restart.
//
// Discovery is honest: the mapper only learns what probe packets tell it.
// A probe carries a candidate route; if it reaches a host, that host's
// mapping responder replies along the reversed ingress-port path. Routes
// that draw no reply within the timeout either dead-end or stop inside a
// switch and are extended breadth-first up to the depth limit.

// RouteTable maps a destination NIC id to the source route reaching it.
type RouteTable map[int][]byte

// Mapping message framing.
const (
	mapMagic   = 0x4D // 'M'
	mapProbe   = 1
	mapReply   = 2
	mapMsgSize = 10
)

func encodeMapMsg(typ byte, seq uint32, nicID uint32) []byte {
	b := make([]byte, mapMsgSize)
	b[0] = mapMagic
	b[1] = typ
	binary.BigEndian.PutUint32(b[2:], seq)
	binary.BigEndian.PutUint32(b[6:], nicID)
	return b
}

func decodeMapMsg(b []byte) (typ byte, seq uint32, nicID uint32, ok bool) {
	if len(b) != mapMsgSize || b[0] != mapMagic {
		return 0, 0, 0, false
	}
	return b[1], binary.BigEndian.Uint32(b[2:]), binary.BigEndian.Uint32(b[6:]), true
}

// Mapping is an in-progress or finished network-mapping run.
type Mapping struct {
	eng    *sim.Engine
	net    *Network
	tables map[int]RouteTable
	done   bool
	cond   *sim.Cond
	err    error
}

type mapReplyMsg struct {
	seq       uint32
	responder int
	ingress   []byte
}

// StartMapping boots the mapping LCP on every NIC of the network and
// probes breadth-first from each node up to maxDepth switch hops. It
// returns immediately; the run completes as the simulation executes. Use
// Wait from a process, or run the engine and then call Tables.
func StartMapping(net *Network, maxDepth int, probeTimeout sim.Time) *Mapping {
	m := &Mapping{
		eng:    net.Engine(),
		net:    net,
		tables: make(map[int]RouteTable),
		cond:   sim.NewCond(net.Engine()),
	}

	replies := sim.NewQueue[mapReplyMsg](m.eng, "map:replies")
	nics := net.NICs()

	// Mapping responders: every NIC answers probes and funnels replies to
	// the coordinator. They are killed once mapping finishes, freeing the
	// RX queues for the VMMC LCP (§4.3: "replaces the mapping LCP").
	responders := make([]*sim.Proc, len(nics))
	for _, nic := range nics {
		nic := nic
		responders[nic.ID] = m.eng.Go(fmt.Sprintf("maplcp:%d", nic.ID), func(p *sim.Proc) {
			for {
				pk := nic.RX.Get(p)
				typ, seq, id, ok := decodeMapMsg(pk.Payload)
				if !ok || !pk.CheckCRC() {
					continue
				}
				switch typ {
				case mapProbe:
					reply := encodeMapMsg(mapReply, seq, uint32(nic.ID))
					nic.Send(p, ReverseRoute(pk.Ingress), reply)
				case mapReply:
					replies.Put(mapReplyMsg{seq: seq, responder: int(id), ingress: pk.Ingress})
				}
			}
		})
	}

	m.eng.Go("map:coordinator", func(p *sim.Proc) {
		defer func() {
			for _, r := range responders {
				r.Kill()
			}
			m.done = true
			m.cond.Broadcast()
		}()
		var seq uint32
		for _, nic := range nics {
			table := RouteTable{}
			reverse := map[int][]byte{} // responder -> route back to prober
			// Breadth-first candidate routes. The empty route covers a
			// direct NIC-to-NIC cable.
			frontier := [][]byte{{}}
			for depth := 0; depth <= maxDepth && len(frontier) > 0; depth++ {
				var next [][]byte
				for _, route := range frontier {
					seq++
					nic.Send(p, route, encodeMapMsg(mapProbe, seq, uint32(nic.ID)))
					found := false
					for {
						r, ok := replies.GetTimeout(p, probeTimeout)
						if !ok {
							break
						}
						if r.seq != seq {
							continue // stale reply from a timed-out probe
						}
						if _, dup := table[r.responder]; !dup {
							table[r.responder] = append([]byte(nil), route...)
							reverse[r.responder] = ReverseRoute(r.ingress)
						}
						found = true
						break
					}
					if !found && depth < maxDepth {
						// Possibly a switch behind this prefix: extend.
						for port := 0; port < 8; port++ {
							ext := make([]byte, len(route)+1)
							copy(ext, route)
							ext[len(route)] = byte(port)
							next = append(next, ext)
						}
					}
				}
				frontier = next
			}
			m.tables[nic.ID] = table
		}
	})
	return m
}

// Wait parks p until mapping completes.
func (m *Mapping) Wait(p *sim.Proc) {
	for !m.done {
		m.cond.Wait(p)
	}
}

// Done reports whether mapping has completed.
func (m *Mapping) Done() bool { return m.done }

// Tables returns the per-node route tables. It panics if mapping has not
// completed — run the engine first.
func (m *Mapping) Tables() map[int]RouteTable {
	if !m.done {
		panic("myrinet: Tables() before mapping completed")
	}
	return m.tables
}
