package myrinet

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Topology stress for the mapper: trees, partitions, and depth limits.

func TestMappingTreeOfSwitches(t *testing.T) {
	//        sw0
	//       /    \
	//     sw1    sw2
	//    /   \      \
	//  n0,n1  (n2)   n3      (hosts hang off sw1, sw1, sw2)
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sw0, sw1, sw2 := n.AddSwitch(8), n.AddSwitch(8), n.AddSwitch(8)
	if err := n.ConnectSwitches(sw0, 0, sw1, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectSwitches(sw0, 1, sw2, 0); err != nil {
		t.Fatal(err)
	}
	hosts := []struct {
		sw   *Switch
		port int
	}{
		{sw1, 2}, {sw1, 3}, {sw1, 4}, {sw2, 2},
	}
	for i, h := range hosts {
		nic := n.AddNIC()
		if err := n.AttachNIC(nic, h.sw, h.port); err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
	}
	m := StartMapping(n, 4, 20*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tables := m.Tables()
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if src == dst {
				continue
			}
			route, ok := tables[src][dst]
			if !ok {
				t.Fatalf("no route %d->%d", src, dst)
			}
			got, _, _, reason := n.walk(n.NICs()[src], route)
			if got == nil || got.ID != dst {
				t.Errorf("route %d->%d = %v invalid: %s", src, dst, route, reason)
			}
		}
	}
	// Hosts 0 and 3 are three hops apart (sw1 -> sw0 -> sw2).
	if r := tables[0][3]; len(r) != 3 {
		t.Errorf("route 0->3 = %v, want 3 hops", r)
	}
}

func TestMappingDepthLimitHidesDistantHosts(t *testing.T) {
	// A chain sw0-sw1-sw2 with a host on each end: depth 1 cannot see
	// across three switches; depth 3 can.
	build := func() (*sim.Engine, *Network) {
		e := sim.NewEngine()
		n := New(e, hw.Default())
		sws := []*Switch{n.AddSwitch(8), n.AddSwitch(8), n.AddSwitch(8)}
		if err := n.ConnectSwitches(sws[0], 7, sws[1], 6); err != nil {
			t.Fatal(err)
		}
		if err := n.ConnectSwitches(sws[1], 7, sws[2], 6); err != nil {
			t.Fatal(err)
		}
		a, b := n.AddNIC(), n.AddNIC()
		if err := n.AttachNIC(a, sws[0], 0); err != nil {
			t.Fatal(err)
		}
		if err := n.AttachNIC(b, sws[2], 0); err != nil {
			t.Fatal(err)
		}
		return e, n
	}

	e, n := build()
	m := StartMapping(n, 1, 20*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Tables()[0][1]; ok {
		t.Error("depth-1 mapping found a 3-hop host")
	}

	e, n = build()
	m = StartMapping(n, 3, 20*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r, ok := m.Tables()[0][1]; !ok || len(r) != 3 {
		t.Errorf("depth-3 mapping route = %v,%v, want 3 hops", r, ok)
	}
}

func TestMappingPartitionedFabric(t *testing.T) {
	// Two disconnected switches: hosts see only their own island.
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sw0, sw1 := n.AddSwitch(8), n.AddSwitch(8)
	for i := 0; i < 2; i++ {
		nic := n.AddNIC()
		if err := n.AttachNIC(nic, sw0, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		nic := n.AddNIC()
		if err := n.AttachNIC(nic, sw1, i); err != nil {
			t.Fatal(err)
		}
	}
	m := StartMapping(n, 3, 20*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tables := m.Tables()
	if _, ok := tables[0][1]; !ok {
		t.Error("same-island route missing")
	}
	if _, ok := tables[0][2]; ok {
		t.Error("route across a partition discovered")
	}
	if _, ok := tables[2][3]; !ok {
		t.Error("second island's internal route missing")
	}
}

func TestCRCStormDoesNotWedgeTheSystem(t *testing.T) {
	// Inject corruption into a burst of packets mid-stream: the receiver
	// drops them all (no recovery, §4.2) and later traffic still flows.
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sw := n.AddSwitch(8)
	a, b := n.AddNIC(), n.AddNIC()
	if err := n.AttachNIC(a, sw, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachNIC(b, sw, 1); err != nil {
		t.Fatal(err)
	}
	pl := fault.NewPlan(e, 1)
	n.SetFaults(pl)
	corrupted, clean := 0, 0
	e.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			pk := b.RX.Get(p)
			if pk.CheckCRC() {
				clean++
			} else {
				corrupted++
			}
		}
	})
	e.Go("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			a.Send(p, []byte{1}, []byte{byte(i)})
		}
		pl.CorruptNextOn(a.ID, 10)
		for i := 5; i < 15; i++ {
			a.Send(p, []byte{1}, []byte{byte(i)})
		}
		for i := 15; i < 20; i++ {
			a.Send(p, []byte{1}, []byte{byte(i)})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if corrupted != 10 || clean != 10 {
		t.Errorf("corrupted=%d clean=%d, want 10/10", corrupted, clean)
	}
}

func TestNICStats(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sw := n.AddSwitch(8)
	a, b := n.AddNIC(), n.AddNIC()
	if err := n.AttachNIC(a, sw, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachNIC(b, sw, 1); err != nil {
		t.Fatal(err)
	}
	e.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			b.RX.Get(p)
		}
	})
	e.Go("send", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			a.Send(p, []byte{1}, []byte("x"))
		}
		a.Send(p, []byte{7}, []byte("dead")) // unconnected port
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	inj, del := a.Stats()
	if inj != 4 || del != 0 {
		t.Errorf("sender stats = %d,%d", inj, del)
	}
	inj, del = b.Stats()
	if inj != 0 || del != 3 {
		t.Errorf("receiver stats = %d,%d", inj, del)
	}
	dropped, reason := n.Dropped()
	if dropped != 1 || reason == "" {
		t.Errorf("dropped = %d (%q)", dropped, reason)
	}
}

func TestMappingSurvivesLossyLink(t *testing.T) {
	// Host 2's cable corrupts every packet: its probes and the probes sent
	// to it all fail CRC at the receiving end. Mapping must still
	// terminate — probe timeouts, not hangs — and produce the partial map
	// covering the healthy hosts.
	e := sim.NewEngine()
	n := New(e, hw.Default())
	pl := fault.NewPlan(e, 7)
	n.SetFaults(pl)
	sw := n.AddSwitch(8)
	for i := 0; i < 3; i++ {
		nic := n.AddNIC()
		if err := n.AttachNIC(nic, sw, i); err != nil {
			t.Fatal(err)
		}
	}
	pl.SetLinkBER(n.NICs()[2].ID, 1.0)

	m := StartMapping(n, 2, 20*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tables := m.Tables()
	if _, ok := tables[0][1]; !ok {
		t.Error("healthy route 0->1 missing")
	}
	if _, ok := tables[1][0]; !ok {
		t.Error("healthy route 1->0 missing")
	}
	for _, pair := range [][2]int{{0, 2}, {1, 2}, {2, 0}, {2, 1}} {
		if _, ok := tables[pair[0]][pair[1]]; ok {
			t.Errorf("route %d->%d discovered across the lossy link", pair[0], pair[1])
		}
	}
	if pl.Stats().Corruptions == 0 {
		t.Error("no corruptions injected on the lossy link")
	}
}
