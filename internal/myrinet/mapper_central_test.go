package myrinet

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// buildChain wires nsw 8-port switches in a chain (port 7 forward, port 6
// back) with hosts on ports 0..5 — the cluster wiring for >8 nodes.
func buildChain(t *testing.T, e *sim.Engine, nsw, hosts int) *Network {
	t.Helper()
	n := New(e, hw.Default())
	switches := make([]*Switch, nsw)
	for i := range switches {
		switches[i] = n.AddSwitch(8)
		if i > 0 {
			if err := n.ConnectSwitches(switches[i-1], 7, switches[i], 6); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < hosts; i++ {
		nic := n.AddNIC()
		if err := n.AttachNIC(nic, switches[i/6], i%6); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestCentralMappingChainAllPairs checks the centralized mapper on the
// multi-switch cluster wiring: every pair of hosts gets a route, and every
// computed route walks to its destination. The pairwise routes for nodes
// other than the prober are derived from the tree, not probed, so this
// pins the climb-to-divergence/descend composition.
func TestCentralMappingChainAllPairs(t *testing.T) {
	e := sim.NewEngine()
	n := buildChain(t, e, 4, 20)
	timeout := 20*sim.Microsecond + sim.Time(10)*hw.Default().SwitchLatency
	m := StartMappingCentral(n, 5, timeout)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tables := m.Tables()
	nics := n.NICs()
	for _, src := range nics {
		for _, dst := range nics {
			if src.ID == dst.ID {
				continue
			}
			route, ok := tables[src.ID][dst.ID]
			if !ok {
				t.Fatalf("no route %d->%d", src.ID, dst.ID)
			}
			got, _, _, reason := n.walk(src, route)
			if got == nil || got.ID != dst.ID {
				t.Errorf("route %d->%d = %v invalid: %s", src.ID, dst.ID, route, reason)
			}
		}
	}
}

// TestCentralMappingProbeBudget pins the point of the centralized mapper:
// probe traffic stays linear in the fabric size instead of exponential in
// chain depth. A 7-switch chain explored exhaustively would need ~8^8
// probes; the central mapper's fingerprint dedup and silent cutoff keep
// the whole run under a few thousand packets.
func TestCentralMappingProbeBudget(t *testing.T) {
	e := sim.NewEngine()
	n := buildChain(t, e, 7, 40)
	timeout := 20*sim.Microsecond + sim.Time(16)*hw.Default().SwitchLatency
	m := StartMappingCentral(n, 8, timeout)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.Tables()) != 40 {
		t.Fatalf("mapped %d hosts, want 40", len(m.Tables()))
	}
	injected, _ := n.NICs()[0].Stats()
	if injected > 4000 {
		t.Errorf("prober injected %d packets on a 7-switch chain, want linear (<= 4000)", injected)
	}
}

// TestCentralMappingDirectCable covers the degenerate two-NIC fabric: the
// empty-route probe finds the peer and no switch exploration happens.
func TestCentralMappingDirectCable(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, hw.Default())
	a, b := n.AddNIC(), n.AddNIC()
	// No public NIC-to-NIC cabling helper; wire the endpoints directly.
	a.peer = endpoint{kind: kindNIC, id: b.ID}
	b.peer = endpoint{kind: kindNIC, id: a.ID}
	m := StartMappingCentral(n, 2, 20*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tables := m.Tables()
	if r, ok := tables[a.ID][b.ID]; !ok || len(r) != 0 {
		t.Errorf("a->b route = %v,%v, want empty route", r, ok)
	}
	if r, ok := tables[b.ID][a.ID]; !ok || len(r) != 0 {
		t.Errorf("b->a route = %v,%v, want empty route", r, ok)
	}
}
