// Package myrinet models the Myrinet fabric: point-to-point links at
// 1.28 Gb/s per direction, 8-port cut-through crossbar switches, source
// routing with per-hop header stripping, hardware CRC-8 generation and
// checking, and in-order delivery (§3 of the paper).
package myrinet

// CRC-8 with the ATM HEC polynomial x^8+x^2+x+1 (0x07), the generator used
// by Myrinet's link-level packet check. Table-driven, computed over the
// packet payload (header + data) at injection and verified at the sink.
var crcTable [256]byte

func init() {
	const poly = 0x07
	for i := 0; i < 256; i++ {
		c := byte(i)
		for b := 0; b < 8; b++ {
			if c&0x80 != 0 {
				c = c<<1 ^ poly
			} else {
				c <<= 1
			}
		}
		crcTable[i] = c
	}
}

// CRC8 returns the CRC-8 of data.
func CRC8(data []byte) byte {
	var c byte
	for _, b := range data {
		c = crcTable[c^b]
	}
	return c
}
