package myrinet

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/sim"
)

func TestCRC8KnownValues(t *testing.T) {
	if CRC8(nil) != 0 {
		t.Errorf("CRC8(nil) = %#x, want 0", CRC8(nil))
	}
	// CRC-8/ATM check value: "123456789" -> 0xF4.
	if got := CRC8([]byte("123456789")); got != 0xF4 {
		t.Errorf("CRC8(123456789) = %#x, want 0xF4", got)
	}
}

func TestCRC8DetectsSingleBitErrors(t *testing.T) {
	data := []byte("myrinet packet payload for crc check")
	orig := CRC8(data)
	for i := range data {
		for b := 0; b < 8; b++ {
			data[i] ^= 1 << b
			if CRC8(data) == orig {
				t.Fatalf("single-bit flip at byte %d bit %d undetected", i, b)
			}
			data[i] ^= 1 << b
		}
	}
}

// CRC property: flipping any single bit of any payload changes the CRC.
func TestCRC8SingleBitProperty(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		i := int(pos) % (len(data) * 8)
		orig := CRC8(data)
		data[i/8] ^= 1 << (i % 8)
		changed := CRC8(data) != orig
		data[i/8] ^= 1 << (i % 8)
		return changed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// star4 builds the paper's hardware: 4 NICs on one 8-port switch.
func star4(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sw := n.AddSwitch(8)
	for i := 0; i < 4; i++ {
		nic := n.AddNIC()
		if err := n.AttachNIC(nic, sw, i); err != nil {
			t.Fatal(err)
		}
	}
	return e, n
}

func TestSendDeliversAlongRoute(t *testing.T) {
	e, n := star4(t)
	nics := n.NICs()
	payload := []byte("hello myrinet")
	var got *Packet
	e.Go("recv", func(p *sim.Proc) {
		got = nics[2].RX.Get(p)
	})
	e.Go("send", func(p *sim.Proc) {
		nics[0].Send(p, []byte{2}, payload)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Errorf("payload = %q, want %q", got.Payload, payload)
	}
	if !got.CheckCRC() {
		t.Error("CRC check failed on clean delivery")
	}
	if len(got.Ingress) != 1 || got.Ingress[0] != 0 {
		t.Errorf("ingress = %v, want [0]", got.Ingress)
	}
}

func TestSendInvalidRouteDrops(t *testing.T) {
	e, n := star4(t)
	nics := n.NICs()
	e.Go("send", func(p *sim.Proc) {
		nics[0].Send(p, []byte{7}, []byte("to empty port")) // port 7 unconnected
		nics[0].Send(p, []byte{9}, []byte("no such port"))
		nics[0].Send(p, nil, []byte("dies inside switch"))
		nics[0].Send(p, []byte{2, 3}, []byte("leftover route bytes at NIC"))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	dropped, _ := n.Dropped()
	if dropped != 4 {
		t.Errorf("dropped = %d, want 4", dropped)
	}
	if _, ok := nics[2].RX.TryGet(); ok {
		t.Error("packet with leftover route bytes was delivered")
	}
}

func TestInOrderDelivery(t *testing.T) {
	e, n := star4(t)
	nics := n.NICs()
	const k = 20
	e.Go("send", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			nics[0].Send(p, []byte{1}, []byte{byte(i)})
		}
	})
	var got []byte
	e.Go("recv", func(p *sim.Proc) {
		for i := 0; i < k; i++ {
			pk := nics[1].RX.Get(p)
			got = append(got, pk.Payload[0])
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if got[i] != byte(i) {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
}

func TestInjectionSerializationTime(t *testing.T) {
	// A 16000-byte payload at 160 MB/s is 100us on the wire, plus the
	// head-flit cost; a second packet queues behind it.
	e, n := star4(t)
	nics := n.NICs()
	var t1, t2 sim.Time
	e.Go("send", func(p *sim.Proc) {
		nics[0].Send(p, []byte{1}, make([]byte, 16000-2)) // +route+crc = 16000 wire bytes
		t1 = p.Now()
		nics[0].Send(p, []byte{1}, make([]byte, 16000-2))
		t2 = p.Now()
	})
	e.Go("recv", func(p *sim.Proc) {
		nics[1].RX.Get(p)
		nics[1].RX.Get(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Micros(100) + hw.Default().LinkFlitCost
	if t1 != want {
		t.Errorf("first injection done at %v, want %v", t1, want)
	}
	if t2 != 2*want {
		t.Errorf("second injection done at %v, want %v", t2, 2*want)
	}
}

func TestBitErrorInjectionBreaksCRC(t *testing.T) {
	e, n := star4(t)
	nics := n.NICs()
	pl := fault.NewPlan(e, 1)
	n.SetFaults(pl)
	pl.CorruptNextOn(nics[0].ID, 1)
	var bad, good *Packet
	e.Go("recv", func(p *sim.Proc) {
		bad = nics[1].RX.Get(p)
		good = nics[1].RX.Get(p)
	})
	e.Go("send", func(p *sim.Proc) {
		nics[0].Send(p, []byte{1}, []byte("corrupt me"))
		nics[0].Send(p, []byte{1}, []byte("leave me alone"))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if bad.CheckCRC() {
		t.Error("injected bit error not detected by CRC")
	}
	if !good.CheckCRC() {
		t.Error("uncorrupted packet failed CRC")
	}
}

func TestMultiSwitchRouting(t *testing.T) {
	// nic0 - sw0 -(port3..port5)- sw1 - nic1
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sw0 := n.AddSwitch(8)
	sw1 := n.AddSwitch(8)
	if err := n.ConnectSwitches(sw0, 3, sw1, 5); err != nil {
		t.Fatal(err)
	}
	nic0, nic1 := n.AddNIC(), n.AddNIC()
	if err := n.AttachNIC(nic0, sw0, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachNIC(nic1, sw1, 1); err != nil {
		t.Fatal(err)
	}
	var got *Packet
	e.Go("recv", func(p *sim.Proc) { got = nic1.RX.Get(p) })
	e.Go("send", func(p *sim.Proc) {
		nic0.Send(p, []byte{3, 1}, []byte("two hops"))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no delivery across two switches")
	}
	// Ingress: arrived at sw0 on port 0, at sw1 on port 5.
	if len(got.Ingress) != 2 || got.Ingress[0] != 0 || got.Ingress[1] != 5 {
		t.Errorf("ingress = %v, want [0 5]", got.Ingress)
	}
	// Reverse route must deliver a reply.
	rev := ReverseRoute(got.Ingress)
	if rev[0] != 5 || rev[1] != 0 {
		t.Errorf("reverse route = %v, want [5 0]", rev)
	}
}

func TestReverseRouteRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sw0, sw1 := n.AddSwitch(8), n.AddSwitch(8)
	if err := n.ConnectSwitches(sw0, 7, sw1, 6); err != nil {
		t.Fatal(err)
	}
	a, b := n.AddNIC(), n.AddNIC()
	if err := n.AttachNIC(a, sw0, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachNIC(b, sw1, 3); err != nil {
		t.Fatal(err)
	}
	var echoed *Packet
	e.Go("echo", func(p *sim.Proc) {
		pk := b.RX.Get(p)
		b.Send(p, ReverseRoute(pk.Ingress), []byte("pong"))
	})
	e.Go("ping", func(p *sim.Proc) {
		a.Send(p, []byte{7, 3}, []byte("ping"))
		echoed = a.RX.Get(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if echoed == nil || string(echoed.Payload) != "pong" {
		t.Fatalf("reverse-route reply not delivered: %v", echoed)
	}
}

func TestAttachErrors(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sw := n.AddSwitch(4)
	a, b := n.AddNIC(), n.AddNIC()
	if err := n.AttachNIC(a, sw, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachNIC(b, sw, 0); err == nil {
		t.Error("double-attaching a port succeeded")
	}
	if err := n.AttachNIC(a, sw, 1); err == nil {
		t.Error("re-attaching a NIC succeeded")
	}
	if err := n.ConnectSwitches(sw, 0, sw, 2); err == nil {
		t.Error("connecting to an occupied port succeeded")
	}
}

func TestMappingStar(t *testing.T) {
	e, n := star4(t)
	m := StartMapping(n, 3, 20*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tables := m.Tables()
	if len(tables) != 4 {
		t.Fatalf("mapped %d nodes, want 4", len(tables))
	}
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if dst == src {
				continue
			}
			route, ok := tables[src][dst]
			if !ok {
				t.Fatalf("node %d has no route to %d", src, dst)
			}
			if len(route) != 1 || route[0] != byte(dst) {
				t.Errorf("route %d->%d = %v, want [%d]", src, dst, route, dst)
			}
		}
	}
}

func TestMappingTwoSwitches(t *testing.T) {
	// 2 NICs per switch, switches linked: routes across need 2 hops.
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sw0, sw1 := n.AddSwitch(8), n.AddSwitch(8)
	if err := n.ConnectSwitches(sw0, 7, sw1, 7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := n.AttachNIC(n.AddNIC(), sw0, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := n.AttachNIC(n.AddNIC(), sw1, i); err != nil {
			t.Fatal(err)
		}
	}
	m := StartMapping(n, 3, 20*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tables := m.Tables()
	// Every node reaches every other; verify by walking each route.
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if dst == src {
				continue
			}
			route, ok := tables[src][dst]
			if !ok {
				t.Fatalf("node %d has no route to %d", src, dst)
			}
			got, _, _, reason := n.walk(n.NICs()[src], route)
			if got == nil || got.ID != dst {
				t.Errorf("route %d->%d = %v lands wrong (%v, %s)", src, dst, route, got, reason)
			}
		}
	}
	// Cross-switch routes are two hops.
	if r := tables[0][2]; len(r) != 2 {
		t.Errorf("cross-switch route = %v, want 2 hops", r)
	}
}

func TestMappingDirectNICToNIC(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, hw.Default())
	a, b := n.AddNIC(), n.AddNIC()
	a.peer = endpoint{kind: kindNIC, id: b.ID}
	b.peer = endpoint{kind: kindNIC, id: a.ID}
	m := StartMapping(n, 2, 20*sim.Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tables := m.Tables()
	if r, ok := tables[0][1]; !ok || len(r) != 0 {
		t.Errorf("direct route = %v,%v, want empty route", r, ok)
	}
}
