package myrinet

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Route-resolution edge cases: zero-length and truncated routes, bogus
// ports, overlong routes, and multi-hop ingress reversal — plus the
// net/route_drops accounting each kind of death must feed.

// chain3 builds sw0 -7-6- sw1 -7-6- sw2 with host a on sw0 port 0 and
// host b on sw2 port 1.
func chain3(t *testing.T) (*sim.Engine, *Network, *NIC, *NIC) {
	t.Helper()
	e := sim.NewEngine()
	n := New(e, hw.Default())
	sws := []*Switch{n.AddSwitch(8), n.AddSwitch(8), n.AddSwitch(8)}
	if err := n.ConnectSwitches(sws[0], 7, sws[1], 6); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectSwitches(sws[1], 7, sws[2], 6); err != nil {
		t.Fatal(err)
	}
	a, b := n.AddNIC(), n.AddNIC()
	if err := n.AttachNIC(a, sws[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachNIC(b, sws[2], 1); err != nil {
		t.Fatal(err)
	}
	return e, n, a, b
}

func TestWalkRouteResolutionEdges(t *testing.T) {
	_, n, a, b := chain3(t)

	cases := []struct {
		name   string
		from   *NIC
		route  []byte
		reason string
	}{
		{"zero-length route dies in the first switch", a, nil, "route exhausted inside switch 0"},
		{"route exhausted mid-chain", a, []byte{7}, "route exhausted inside switch 1"},
		{"nonexistent output port", a, []byte{9}, "switch 0 has no port 9"},
		{"dangling port", a, []byte{4}, "dangling link"},
		{"route bytes left at the destination NIC", a, []byte{7, 7, 1, 3}, "reached NIC 1 with 1 route bytes left"},
		{"valid three-hop route", a, []byte{7, 7, 1}, ""},
		{"valid reverse three-hop route", b, []byte{6, 6, 0}, ""},
	}
	for _, tc := range cases {
		dst, _, _, reason := n.walk(tc.from, tc.route)
		if tc.reason == "" {
			if dst == nil {
				t.Errorf("%s: died with %q, want delivery", tc.name, reason)
			}
			continue
		}
		if dst != nil {
			t.Errorf("%s: walk reached NIC %d, want death", tc.name, dst.ID)
			continue
		}
		if reason != tc.reason {
			t.Errorf("%s: reason = %q, want %q", tc.name, reason, tc.reason)
		}
	}
}

// TestRouteDropCounting sends packets that die resolving their route and
// checks the dedicated route-drop counter, the net/route_drops metric,
// and the per-death reason string — the observability the silent
// hardware-style drop otherwise hides.
func TestRouteDropCounting(t *testing.T) {
	e, n, a, _ := chain3(t)
	e.Go("sender", func(p *sim.Proc) {
		a.Send(p, nil, []byte("dies in sw0"))         // route exhausted
		a.Send(p, []byte{7}, []byte("dies in sw1"))   // route exhausted deeper
		a.Send(p, []byte{4}, []byte("dies dangling")) // dangling port
		a.Send(p, []byte{7, 7, 1}, []byte("arrives")) // fine
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.RouteDrops(); got != 3 {
		t.Errorf("RouteDrops = %d, want 3", got)
	}
	dropped, reason := n.Dropped()
	if dropped != 3 {
		t.Errorf("Dropped = %d, want 3", dropped)
	}
	if reason != "dangling link" {
		t.Errorf("last drop reason = %q, want %q", reason, "dangling link")
	}
	found := false
	for _, cv := range e.MetricsSnapshot().Counters {
		if cv.Name == "net/route_drops" {
			found = true
			if cv.Value != 3 {
				t.Errorf("net/route_drops metric = %v, want 3", cv.Value)
			}
		}
	}
	if !found {
		t.Error("net/route_drops metric not registered")
	}
}

// TestReverseRouteThreeHops pings across three switches and echoes on the
// reversed ingress: the reply must land, its own ingress must be the
// mirror image, and reversing *that* must reproduce the original route —
// the invariant the remap service's probe replies stand on.
func TestReverseRouteThreeHops(t *testing.T) {
	e, _, a, b := chain3(t)
	forward := []byte{7, 7, 1}
	var pong *Packet
	e.Go("echo", func(p *sim.Proc) {
		pk := b.RX.Get(p)
		// Entered sw0 at port 0, sw1 at 6, sw2 at 6.
		if len(pk.Ingress) != 3 || pk.Ingress[0] != 0 || pk.Ingress[1] != 6 || pk.Ingress[2] != 6 {
			t.Errorf("ping ingress = %v, want [0 6 6]", pk.Ingress)
		}
		b.Send(p, ReverseRoute(pk.Ingress), []byte("pong"))
	})
	e.Go("ping", func(p *sim.Proc) {
		a.Send(p, forward, []byte("ping"))
		pong = a.RX.Get(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if pong == nil || string(pong.Payload) != "pong" {
		t.Fatalf("three-hop reversed reply not delivered: %v", pong)
	}
	// The reply entered sw2 at port 1, sw1 at 7, sw0 at 7; reversing its
	// ingress reproduces the original forward route.
	rev := ReverseRoute(pong.Ingress)
	if len(rev) != len(forward) {
		t.Fatalf("reversed reply ingress = %v, want length %d", rev, len(forward))
	}
	for i := range forward {
		if rev[i] != forward[i] {
			t.Fatalf("reversed reply ingress = %v, want %v", rev, forward)
		}
	}
}

// TestReverseRouteZeroLength pins the degenerate case: an empty ingress
// (a packet that crossed no switch) reverses to an empty route.
func TestReverseRouteZeroLength(t *testing.T) {
	if got := ReverseRoute(nil); len(got) != 0 {
		t.Errorf("ReverseRoute(nil) = %v, want empty", got)
	}
	if got := ReverseRoute([]byte{}); len(got) != 0 {
		t.Errorf("ReverseRoute([]) = %v, want empty", got)
	}
}
