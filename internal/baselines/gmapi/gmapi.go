// Package gmapi models Myricom's stock Myrinet API on the simulated
// hardware (§7): the vendor messaging layer the paper measures at 63 us
// latency for a 4-byte packet and ~30 MB/s peak ping-pong bandwidth for
// 8 KB messages. The model reflects why it is slow:
//
//   - a heavyweight host library path on both send and receive
//     (multi-channel demultiplexing, descriptor management);
//   - large messages move in page-sized chunks, each paying per-chunk
//     LANai handling on both sides;
//   - the LANai computes a software message checksum, overlapped with the
//     DMA streams but verified before delivery;
//   - no flow control or reliable delivery (§7), so nothing is modeled
//     for retransmission — packets that fail the CRC are simply dropped.
package gmapi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/baselines/testbed"
	"repro/internal/myrinet"
	"repro/internal/sim"
)

const (
	headerBytes = 12
	chunkBytes  = 4096
)

var (
	sendLibCost  = sim.Micros(23.4) // api_send host library path
	recvLibCost  = sim.Micros(23.4) // receive-side library + dispatch
	lanaiSend    = sim.Micros(4)    // LANai per-chunk handling + checksum setup
	lanaiRecv    = sim.Micros(4)
	pollInterval = sim.Micros(0.5)
)

// System is a two-node Myrinet API installation.
type System struct {
	Eng *sim.Engine
	Rig *testbed.Rig
	Eps [2]*Endpoint
}

// Endpoint is one node's API port.
type Endpoint struct {
	host    *testbed.Host
	arrived [][]byte
	pending map[uint32][]byte
	nextID  uint32

	ChecksumFailures int64
}

// New builds the system and starts the receive engines.
func New(eng *sim.Engine, rig *testbed.Rig) *System {
	s := &System{Eng: eng, Rig: rig}
	for i := 0; i < 2; i++ {
		s.Eps[i] = &Endpoint{host: rig.Hosts[i], pending: make(map[uint32][]byte)}
	}
	for i := 0; i < 2; i++ {
		ep := s.Eps[i]
		ep.host.StartRX(fmt.Sprintf("gmapi:%d", i), ep.handlePacket)
	}
	return s
}

// checksum is the API's software message checksum, computed by the LANai.
func checksum(data []byte) uint16 {
	var s uint16
	for _, b := range data {
		s = s<<1 | s>>15
		s += uint16(b)
	}
	return s
}

// Send transmits data from registered memory to the peer in page-sized
// chunks. Each chunk pays per-chunk LANai handling; the software checksum
// is computed incrementally as the DMA streams (overlapped), so the DMA
// plus handling dominates.
func (ep *Endpoint) Send(p *sim.Proc, data []byte) {
	host := ep.host
	p.Sleep(sendLibCost)
	msgID := ep.nextID
	ep.nextID++
	total := len(data)

	for off := 0; off < total || (total == 0 && off == 0); off += chunkBytes {
		n := total - off
		if n > chunkBytes {
			n = chunkBytes
		}
		host.Board.HostDMA.TransferWith(p, n, host.Prof.HostToLANai)
		p.Sleep(lanaiSend)
		hdr := make([]byte, headerBytes)
		binary.BigEndian.PutUint32(hdr[0:], msgID)
		binary.BigEndian.PutUint32(hdr[4:], uint32(total))
		binary.BigEndian.PutUint16(hdr[8:], checksum(data[off:off+n]))
		host.Board.SendPacket(p, host.Route, append(hdr, data[off:off+n]...))
		if total == 0 {
			break
		}
	}
}

// handlePacket verifies the checksum and DMAs the chunk up to host memory.
func (ep *Endpoint) handlePacket(p *sim.Proc, pk *myrinet.Packet) {
	host := ep.host
	if len(pk.Payload) < headerBytes || !pk.CheckCRC() {
		return
	}
	p.Sleep(lanaiRecv)
	data := pk.Payload[headerBytes:]
	if checksum(data) != binary.BigEndian.Uint16(pk.Payload[8:]) {
		ep.ChecksumFailures++
		return // no reliable delivery: drop (§7)
	}
	host.Board.HostDMA.TransferWith(p, len(data), host.Prof.LANaiToHost)
	msgID := binary.BigEndian.Uint32(pk.Payload[0:])
	total := int(binary.BigEndian.Uint32(pk.Payload[4:]))
	ep.pending[msgID] = append(ep.pending[msgID], data...)
	if len(ep.pending[msgID]) >= total {
		ep.arrived = append(ep.arrived, ep.pending[msgID][:total])
		delete(ep.pending, msgID)
	}
}

// Recv polls for the next message and runs the receive library path.
func (ep *Endpoint) Recv(p *sim.Proc) []byte {
	for len(ep.arrived) == 0 {
		p.Sleep(pollInterval)
	}
	p.Sleep(recvLibCost)
	m := ep.arrived[0]
	ep.arrived = ep.arrived[1:]
	return m
}
