// Package fm models Illinois Fast Messages 2.0 on the simulated Myrinet
// hardware (§7). FM's design points, all reflected here:
//
//   - programmed I/O on the send side: the host writes each packet into
//     LANai memory word by word, avoiding send-side pinning but capping
//     send bandwidth at the MMIO write rate;
//   - small packets (128 bytes) and a streaming interface;
//   - receive-side DMA into a pinned receive ring, after which a handler
//     copies the data into the user's data structures (the copy VMMC
//     avoids by letting senders target exported user memory directly);
//   - reliable delivery with credit-based flow control;
//   - no protection: one user process per node owns the interface.
package fm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/baselines/testbed"
	"repro/internal/myrinet"
	"repro/internal/sim"
)

// Protocol geometry and calibrated software costs.
const (
	// PacketBytes is FM's small fixed buffer size (§7: 128 bytes),
	// including the header.
	PacketBytes = 128
	headerBytes = 12
	// PayloadBytes is the data carried per packet.
	PayloadBytes = PacketBytes - headerBytes

	// CreditWindow packets may be outstanding; the receiver returns
	// credits in batches.
	CreditWindow = 64
	creditBatch  = 16

	ringSlots = 256
)

var (
	sendLibCost  = sim.Micros(2.8) // FM_send library path before the PIO
	lanaiSend    = sim.Micros(1.2) // LANai: frame packet, start injection
	lanaiRecv    = sim.Micros(1.0) // LANai: receive path before ring DMA
	extractCost  = sim.Micros(2.4) // FM_extract dispatch to the handler
	pollInterval = sim.Micros(0.3)
)

// System is a pair of FM endpoints on the shared testbed rig.
type System struct {
	Rig *testbed.Rig
	Eps [2]*Endpoint
}

// Endpoint is one node's FM state: the receive ring and reassembly
// buffers, plus sender credits toward the peer.
type Endpoint struct {
	host *testbed.Host
	peer *Endpoint

	// window and batch implement the credit flow control: window packets
	// may be outstanding; the receiver returns credits in batches. Tests
	// shrink them to force stalls.
	window, batch int
	credits       int
	creditsCond   *sim.Cond

	// injectq decouples the host's PIO (which dominates send bandwidth)
	// from the LANai's framing and injection of the previous packet.
	injectq *sim.Queue[[]byte]

	ring      []message // completed messages awaiting Extract
	ringBytes int
	partial   map[uint32][]byte // msgID -> bytes received so far
	partLen   map[uint32]int    // msgID -> total length
	nextMsgID uint32
	unacked   int // data packets received since last credit return

	// Stats.
	PacketsSent, PacketsRecv int64
	CreditStalls             int64
}

type message struct {
	data []byte
}

// New builds a two-node FM system and starts the receive engines.
func New(eng *sim.Engine, rig *testbed.Rig) *System {
	s := &System{Rig: rig}
	for i := 0; i < 2; i++ {
		s.Eps[i] = &Endpoint{
			host:        rig.Hosts[i],
			window:      CreditWindow,
			batch:       creditBatch,
			credits:     CreditWindow,
			creditsCond: sim.NewCond(eng),
			injectq:     sim.NewQueue[[]byte](eng, fmt.Sprintf("fm:inj:%d", i)),
			partial:     make(map[uint32][]byte),
			partLen:     make(map[uint32]int),
		}
	}
	s.Eps[0].peer = s.Eps[1]
	s.Eps[1].peer = s.Eps[0]
	for i := 0; i < 2; i++ {
		ep := s.Eps[i]
		// The LANai injector frames and injects packets the host PIO'd
		// into SRAM, overlapping the host's PIO of the next packet.
		eng.Go(fmt.Sprintf("fm:inject:%d", i), func(p *sim.Proc) {
			p.SetDaemon(true)
			for {
				pkt := ep.injectq.Get(p)
				p.Sleep(lanaiSend)
				ep.host.Board.SendPacket(p, ep.host.Route, pkt)
				ep.PacketsSent++
			}
		})
		ep.host.StartRX(fmt.Sprintf("fm:%d", i), ep.handlePacket)
	}
	return s
}

// SetFlowControl overrides the credit window and batch (tests).
func (ep *Endpoint) SetFlowControl(window, batch int) {
	ep.window, ep.batch = window, batch
	ep.credits = window
}

// Packet types.
const (
	ptData   = 1
	ptCredit = 2
)

func encodeHeader(typ byte, msgID uint32, total uint32, off uint16) []byte {
	h := make([]byte, headerBytes)
	h[0] = typ
	binary.BigEndian.PutUint32(h[2:], msgID)
	binary.BigEndian.PutUint32(h[6:], total)
	binary.BigEndian.PutUint16(h[10:], off)
	return h
}

// Send streams data to the peer as 128-byte packets pushed with
// programmed I/O. It blocks while the credit window is exhausted
// (reliable, flow-controlled delivery).
func (ep *Endpoint) Send(p *sim.Proc, data []byte) {
	host := ep.host
	p.Sleep(sendLibCost)
	msgID := ep.nextMsgID
	ep.nextMsgID++
	total := len(data)
	for off := 0; off < total || (total == 0 && off == 0); off += PayloadBytes {
		for ep.credits == 0 {
			ep.CreditStalls++
			ep.creditsCond.Wait(p)
		}
		ep.credits--
		n := total - off
		if n > PayloadBytes {
			n = PayloadBytes
		}
		pkt := append(encodeHeader(ptData, msgID, uint32(total), uint16(off/PayloadBytes)), data[off:off+n]...)
		// The host writes header and payload into LANai SRAM word by
		// word — FM's PIO send (§7: "programmed I/O avoids the need for
		// pinning pages on the sender side"). Framing and injection of
		// the previous packet proceed on the LANai concurrently.
		host.CPU.MMIOWriteBytes(p, len(pkt))
		ep.injectq.Put(pkt)
		if total == 0 {
			break
		}
	}
}

// handlePacket is the endpoint's LANai receive handler: DMA each arriving
// data packet into the pinned ring, reassemble messages, and return
// credits in batches. Credit packets update the local sender's window.
func (ep *Endpoint) handlePacket(p *sim.Proc, pk *myrinet.Packet) {
	host := ep.host
	if len(pk.Payload) < headerBytes || !pk.CheckCRC() {
		return
	}
	switch pk.Payload[0] {
	case ptCredit:
		ep.credits += ep.batch
		if ep.credits > ep.window {
			ep.credits = ep.window
		}
		ep.creditsCond.Broadcast()
	case ptData:
		p.Sleep(lanaiRecv)
		// DMA into the pinned receive ring.
		host.Board.HostDMA.TransferWith(p, len(pk.Payload), host.Prof.LANaiToHost)
		ep.PacketsRecv++
		msgID := binary.BigEndian.Uint32(pk.Payload[2:])
		totalLen := int(binary.BigEndian.Uint32(pk.Payload[6:]))
		ep.partial[msgID] = append(ep.partial[msgID], pk.Payload[headerBytes:]...)
		ep.partLen[msgID] = totalLen
		if len(ep.partial[msgID]) >= totalLen {
			if len(ep.ring) < ringSlots {
				ep.ring = append(ep.ring, message{data: ep.partial[msgID][:totalLen]})
			}
			delete(ep.partial, msgID)
			delete(ep.partLen, msgID)
		}
		ep.unacked++
		if ep.unacked >= ep.batch {
			ep.unacked = 0
			host.Board.SendPacket(p, host.Route, encodeHeader(ptCredit, 0, 0, 0))
		}
	}
}

// Extract polls for completed messages and runs the handler over up to max
// of them; the handler copy out of the pinned ring into user data
// structures is charged at bcopy rate (§7 — the copy VMMC does not pay).
// It blocks until at least one message is handled.
func (ep *Endpoint) Extract(p *sim.Proc, max int) [][]byte {
	for len(ep.ring) == 0 {
		p.Sleep(pollInterval)
	}
	var out [][]byte
	for len(ep.ring) > 0 && len(out) < max {
		m := ep.ring[0]
		ep.ring = ep.ring[1:]
		p.Sleep(extractCost)
		ep.host.CPU.Bcopy(p, len(m.data))
		out = append(out, m.data)
		// Flush leftover credits for the drained packets promptly.
	}
	return out
}

// TryExtract is Extract without blocking; it returns nil when no message
// is complete.
func (ep *Endpoint) TryExtract(p *sim.Proc, max int) [][]byte {
	if len(ep.ring) == 0 {
		return nil
	}
	return ep.Extract(p, max)
}

// PayloadCapacity returns how many bytes fit in k packets.
func PayloadCapacity(k int) int { return k * PayloadBytes }
