// Package baselines_test calibrates the related-work protocol models
// against the numbers Section 7 reports on the same hardware platform:
//
//	Myrinet API: 63 us latency (4 B), ~30 MB/s peak ping-pong (8 KB)
//	FM 2.0:      10.7 us latency (8 B), PIO-limited peak bandwidth
//	PM:          7.2 us latency (8 B), peak pipelined bandwidth with
//	             8 KB transfer units (on our calibrated PCI-read curve
//	             this saturates at ~83 MB/s; see EXPERIMENTS.md)
//	AM:          no numbers in the paper ("does not yet run on our
//	             hardware") — smoke-tested only.
package baselines_test

import (
	"bytes"
	"testing"

	"repro/internal/baselines/am"
	"repro/internal/baselines/fm"
	"repro/internal/baselines/gmapi"
	"repro/internal/baselines/pm"
	"repro/internal/baselines/testbed"
	"repro/internal/hw"
	"repro/internal/sim"
)

func rig(t *testing.T) (*sim.Engine, *testbed.Rig) {
	t.Helper()
	eng := sim.NewEngine()
	r, err := testbed.New(eng, hw.Default())
	if err != nil {
		t.Fatal(err)
	}
	return eng, r
}

func run(t *testing.T, eng *sim.Engine) {
	t.Helper()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// --- FM ---

func TestFMDelivery(t *testing.T) {
	eng, r := rig(t)
	sys := fm.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		msg := make([]byte, 1000)
		for i := range msg {
			msg[i] = byte(i)
		}
		sys.Eps[0].Send(p, msg)
		got := sys.Eps[1].Extract(p, 1)
		if len(got) != 1 || !bytes.Equal(got[0], msg) {
			t.Error("FM message corrupted or missing")
		}
	})
	run(t, eng)
}

func TestFMLatency(t *testing.T) {
	eng, r := rig(t)
	sys := fm.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		// Warm one round, then measure ping-pong.
		sys.Eps[0].Send(p, make([]byte, 8))
		sys.Eps[1].Extract(p, 1)

		const iters = 50
		done := false
		eng.Go("echo", func(bp *sim.Proc) {
			for i := 0; i < iters; i++ {
				m := sys.Eps[1].Extract(bp, 1)
				sys.Eps[1].Send(bp, m[0])
			}
			done = true
		})
		start := p.Now()
		for i := 0; i < iters; i++ {
			sys.Eps[0].Send(p, []byte{1, 2, 3, 4, 5, 6, 7, 8})
			sys.Eps[0].Extract(p, 1)
		}
		lat := (p.Now() - start).Micros() / float64(2*iters)
		t.Logf("FM 8-byte one-way latency = %.2f us (paper: 10.7)", lat)
		if lat < 9.7 || lat > 11.7 {
			t.Errorf("FM latency = %.2f us, want 10.7 +/- 1", lat)
		}
		for !done {
			p.Sleep(sim.Microsecond)
		}
	})
	run(t, eng)
}

func TestFMBandwidthPIOLimited(t *testing.T) {
	eng, r := rig(t)
	sys := fm.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		const msg = 8 << 10
		const count = 50
		got := 0
		doneAt := sim.Time(0)
		eng.Go("sink", func(bp *sim.Proc) {
			for got < count {
				got += len(sys.Eps[1].Extract(bp, 8))
			}
			doneAt = bp.Now()
		})
		start := p.Now()
		for i := 0; i < count; i++ {
			sys.Eps[0].Send(p, make([]byte, msg))
		}
		for doneAt == 0 {
			p.Sleep(10 * sim.Microsecond)
		}
		mbps := float64(msg*count) / (doneAt - start).Seconds() / 1e6
		t.Logf("FM streaming bandwidth (8KB msgs) = %.1f MB/s (PIO-limited, ~30)", mbps)
		if mbps < 25 || mbps > 34 {
			t.Errorf("FM bandwidth = %.1f MB/s, want 25-34 (PIO write limit)", mbps)
		}
	})
	run(t, eng)
}

func TestFMCreditFlowControl(t *testing.T) {
	eng, r := rig(t)
	sys := fm.New(eng, r)
	sys.Eps[0].SetFlowControl(2, 1)
	sys.Eps[1].SetFlowControl(2, 1)
	eng.Go("test", func(p *sim.Proc) {
		// A message needing more packets than the credit window must
		// stall at least once and still arrive intact.
		big := make([]byte, fm.PayloadCapacity(24))
		for i := range big {
			big[i] = byte(i * 7)
		}
		eng.Go("sink", func(bp *sim.Proc) {
			got := sys.Eps[1].Extract(bp, 1)
			if !bytes.Equal(got[0], big) {
				t.Error("flow-controlled message corrupted")
			}
		})
		sys.Eps[0].Send(p, big)
		p.Sleep(sim.Millisecond)
		if sys.Eps[0].CreditStalls == 0 {
			t.Error("sender never stalled despite exceeding the credit window")
		}
	})
	run(t, eng)
}

// --- PM ---

func TestPMDelivery(t *testing.T) {
	eng, r := rig(t)
	sys := pm.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		ch, err := sys.OpenChannel(1)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, 20000)
		for i := range msg {
			msg[i] = byte(i ^ 0x3C)
		}
		if err := ch.Send(p, 0, msg, true); err != nil {
			t.Fatal(err)
		}
		got := ch.Recv(p, 1)
		if !bytes.Equal(got, msg) {
			t.Error("PM message corrupted")
		}
	})
	run(t, eng)
}

func TestPMLatency(t *testing.T) {
	eng, r := rig(t)
	sys := pm.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		ch, err := sys.OpenChannel(1)
		if err != nil {
			t.Fatal(err)
		}
		ch.Send(p, 0, make([]byte, 8), false)
		ch.Recv(p, 1) // warm
		const iters = 50
		eng.Go("echo", func(bp *sim.Proc) {
			for i := 0; i < iters; i++ {
				m := ch.Recv(bp, 1)
				ch.Send(bp, 1, m, false)
			}
		})
		start := p.Now()
		for i := 0; i < iters; i++ {
			ch.Send(p, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8}, false)
			ch.Recv(p, 0)
		}
		lat := (p.Now() - start).Micros() / float64(2*iters)
		t.Logf("PM 8-byte one-way latency = %.2f us (paper: 7.2)", lat)
		if lat < 6.4 || lat > 8.0 {
			t.Errorf("PM latency = %.2f us, want 7.2 +/- 0.8", lat)
		}
	})
	run(t, eng)
}

func TestPMPipelinedBandwidth(t *testing.T) {
	eng, r := rig(t)
	sys := pm.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		ch, err := sys.OpenChannel(1)
		if err != nil {
			t.Fatal(err)
		}
		const msg = 256 << 10
		const count = 20
		recvd := 0
		doneAt := sim.Time(0)
		eng.Go("sink", func(bp *sim.Proc) {
			for recvd < count {
				ch.Recv(bp, 1)
				recvd++
			}
			doneAt = bp.Now()
		})
		start := p.Now()
		for i := 0; i < count; i++ {
			// Peak quote excludes the user copy (§7).
			if err := ch.Send(p, 0, make([]byte, msg), false); err != nil {
				t.Fatal(err)
			}
		}
		for doneAt == 0 {
			p.Sleep(10 * sim.Microsecond)
		}
		mbps := float64(msg*count) / (doneAt - start).Seconds() / 1e6
		t.Logf("PM pipelined bandwidth (8KB units) = %.1f MB/s (saturates our PCI-read curve ~83)", mbps)
		if mbps < 80 || mbps > 86 {
			t.Errorf("PM bandwidth = %.1f MB/s, want ~83 (8KB-unit DMA limit)", mbps)
		}
		// On the paper's testbed PM's larger transfer units put it well
		// above VMMC (118 vs 80.4); on our calibrated PCI-read curve the
		// 8 KB unit only edges out the page-sized one (see EXPERIMENTS.md).
	})
	run(t, eng)
}

func TestPMCopyCostReducesUserBandwidth(t *testing.T) {
	eng, r := rig(t)
	sys := pm.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		ch, err := sys.OpenChannel(1)
		if err != nil {
			t.Fatal(err)
		}
		const msg = 64 << 10
		start := p.Now()
		ch.Send(p, 0, make([]byte, msg), false)
		noCopy := p.Now() - start
		start = p.Now()
		ch.Send(p, 0, make([]byte, msg), true)
		withCopy := p.Now() - start
		if withCopy <= noCopy {
			t.Errorf("copy-included send (%v) not slower than peak-mode send (%v)", withCopy, noCopy)
		}
	})
	run(t, eng)
}

// --- Myrinet API ---

func TestGMAPIDelivery(t *testing.T) {
	eng, r := rig(t)
	sys := gmapi.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		msg := make([]byte, 10000)
		for i := range msg {
			msg[i] = byte(i * 3)
		}
		sys.Eps[0].Send(p, msg)
		got := sys.Eps[1].Recv(p)
		if !bytes.Equal(got, msg) {
			t.Error("API message corrupted")
		}
	})
	run(t, eng)
}

func TestGMAPILatency(t *testing.T) {
	eng, r := rig(t)
	sys := gmapi.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		sys.Eps[0].Send(p, make([]byte, 4))
		sys.Eps[1].Recv(p) // warm
		const iters = 20
		eng.Go("echo", func(bp *sim.Proc) {
			for i := 0; i < iters; i++ {
				m := sys.Eps[1].Recv(bp)
				sys.Eps[1].Send(bp, m)
			}
		})
		start := p.Now()
		for i := 0; i < iters; i++ {
			sys.Eps[0].Send(p, []byte{1, 2, 3, 4})
			sys.Eps[0].Recv(p)
		}
		lat := (p.Now() - start).Micros() / float64(2*iters)
		t.Logf("Myrinet API 4-byte one-way latency = %.2f us (paper: 63)", lat)
		if lat < 58 || lat > 68 {
			t.Errorf("API latency = %.2f us, want 63 +/- 5", lat)
		}
	})
	run(t, eng)
}

func TestGMAPIPingPongBandwidth(t *testing.T) {
	eng, r := rig(t)
	sys := gmapi.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		const msg = 8 << 10
		sys.Eps[0].Send(p, make([]byte, msg))
		sys.Eps[1].Recv(p) // warm
		const iters = 10
		eng.Go("echo", func(bp *sim.Proc) {
			for i := 0; i < iters; i++ {
				m := sys.Eps[1].Recv(bp)
				sys.Eps[1].Send(bp, m)
			}
		})
		start := p.Now()
		for i := 0; i < iters; i++ {
			sys.Eps[0].Send(p, make([]byte, msg))
			sys.Eps[0].Recv(p)
		}
		oneWay := (p.Now() - start).Seconds() / float64(2*iters)
		mbps := msg / oneWay / 1e6
		t.Logf("Myrinet API ping-pong bandwidth (8KB) = %.1f MB/s (paper: ~30)", mbps)
		if mbps < 26 || mbps > 35 {
			t.Errorf("API bandwidth = %.1f MB/s, want ~30", mbps)
		}
	})
	run(t, eng)
}

// --- AM ---

func TestAMRequestReply(t *testing.T) {
	eng, r := rig(t)
	sys := am.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		sys.Eps[1].Register(7, func(hp *sim.Proc, src int, arg [4]uint32) *[4]uint32 {
			rep := [4]uint32{arg[0] + 1, arg[1] * 2, 0, 0}
			return &rep
		})
		eng.Go("server", func(sp *sim.Proc) {
			for i := 0; i < 200; i++ {
				sys.Eps[1].Poll(sp, 4)
				sp.Sleep(sim.Microsecond)
			}
		})
		sys.Eps[0].Request(p, 7, [4]uint32{41, 21, 0, 0})
		rep := sys.Eps[0].WaitReply(p)
		if rep[0] != 42 || rep[1] != 42 {
			t.Errorf("AM reply = %v, want [42 42 0 0]", rep)
		}
	})
	run(t, eng)
}

func TestAMRoundTripReasonable(t *testing.T) {
	eng, r := rig(t)
	sys := am.New(eng, r)
	eng.Go("test", func(p *sim.Proc) {
		sys.Eps[1].Register(1, func(hp *sim.Proc, src int, arg [4]uint32) *[4]uint32 {
			return &arg
		})
		eng.Go("server", func(sp *sim.Proc) {
			sp.SetDaemon(true)
			for {
				sys.Eps[1].Poll(sp, 4)
				sp.Sleep(sim.Microsecond)
			}
		})
		// Warm.
		sys.Eps[0].Request(p, 1, [4]uint32{})
		sys.Eps[0].WaitReply(p)
		const iters = 20
		start := p.Now()
		for i := 0; i < iters; i++ {
			sys.Eps[0].Request(p, 1, [4]uint32{uint32(i)})
			sys.Eps[0].WaitReply(p)
		}
		rtt := (p.Now() - start).Micros() / iters
		t.Logf("AM request/reply round trip = %.2f us (modeled; no paper number)", rtt)
		if rtt < 5 || rtt > 40 {
			t.Errorf("AM round trip = %.2f us, outside plausible range", rtt)
		}
		eng.Stop() // the polling server loop generates events forever
	})
	run(t, eng)
}
