// Package am models Berkeley Active Messages on the simulated Myrinet
// hardware (§7): every communication is a request/reply pair; a request
// names a handler at the destination and carries a small fixed payload
// passed as the handler's argument. Notification is by polling here.
//
// The paper notes AM "does not yet run on our hardware", so §7 quotes no
// numbers for it; this model exists so the related-work benchmark table
// can show the request/reply design point alongside the others, clearly
// marked as modeled rather than reproduced.
package am

import (
	"encoding/binary"
	"fmt"

	"repro/internal/baselines/testbed"
	"repro/internal/sim"
)

const (
	// PayloadWords is the fixed request/reply argument payload (4 words).
	PayloadWords = 4
	PayloadBytes = PayloadWords * 4
	headerBytes  = 8
)

var (
	sendCost     = sim.Micros(1.6) // compose + PIO the request
	lanaiCost    = sim.Micros(1.4)
	dispatchCost = sim.Micros(1.8) // poll + handler-table dispatch
	pollInterval = sim.Micros(0.3)
)

// Handler is an active-message handler: it receives the source endpoint
// index and the payload, and returns an optional reply payload.
type Handler func(p *sim.Proc, src int, arg [PayloadWords]uint32) *[PayloadWords]uint32

// System is a two-node AM installation.
type System struct {
	Eng *sim.Engine
	Rig *testbed.Rig
	Eps [2]*Endpoint
}

// Endpoint is one node's AM state: a handler table and pending replies.
type Endpoint struct {
	sys      *System
	id       int
	host     *testbed.Host
	handlers map[uint8]Handler
	inbox    []inMsg

	RequestsSent, RepliesReceived int64
}

type inMsg struct {
	isReply bool
	handler uint8
	src     int
	arg     [PayloadWords]uint32
}

// New builds the system and starts the receive loops.
func New(eng *sim.Engine, rig *testbed.Rig) *System {
	s := &System{Eng: eng, Rig: rig}
	for i := 0; i < 2; i++ {
		s.Eps[i] = &Endpoint{sys: s, id: i, host: rig.Hosts[i], handlers: make(map[uint8]Handler)}
	}
	for i := 0; i < 2; i++ {
		ep := s.Eps[i]
		eng.Go(fmt.Sprintf("am:lcp:%d", i), func(p *sim.Proc) {
			p.SetDaemon(true)
			ep.recvEngine(p)
		})
	}
	return s
}

// Register installs a handler under the given index.
func (ep *Endpoint) Register(h uint8, fn Handler) { ep.handlers[h] = fn }

func encode(isReply bool, handler uint8, src int, arg [PayloadWords]uint32) []byte {
	b := make([]byte, headerBytes+PayloadBytes)
	if isReply {
		b[0] = 2
	} else {
		b[0] = 1
	}
	b[1] = handler
	b[2] = byte(src)
	for i, w := range arg {
		binary.BigEndian.PutUint32(b[headerBytes+4*i:], w)
	}
	return b
}

// Request sends an active message naming the remote handler; the caller
// continues and must Poll to drive its own handlers and collect replies.
func (ep *Endpoint) Request(p *sim.Proc, handler uint8, arg [PayloadWords]uint32) {
	p.Sleep(sendCost)
	ep.host.CPU.MMIOWriteBytes(p, headerBytes+PayloadBytes)
	p.Sleep(lanaiCost)
	ep.host.Board.SendPacket(p, ep.host.Route, encode(false, handler, ep.id, arg))
	ep.RequestsSent++
}

// recvEngine deposits arriving messages for Poll to dispatch.
func (ep *Endpoint) recvEngine(p *sim.Proc) {
	host := ep.host
	for {
		pk := host.Board.NIC.RX.Get(p)
		host.Board.RecvPacket(p, pk)
		if len(pk.Payload) < headerBytes+PayloadBytes || !pk.CheckCRC() {
			continue
		}
		p.Sleep(lanaiCost)
		host.Board.HostDMA.TransferWith(p, len(pk.Payload), host.Prof.LANaiToHost)
		m := inMsg{
			isReply: pk.Payload[0] == 2,
			handler: pk.Payload[1],
			src:     int(pk.Payload[2]),
		}
		for i := range m.arg {
			m.arg[i] = binary.BigEndian.Uint32(pk.Payload[headerBytes+4*i:])
		}
		ep.inbox = append(ep.inbox, m)
	}
}

// Poll dispatches pending messages: request handlers run and their reply
// (if any) is sent back; replies are returned to the caller. It processes
// at most max messages and does not block if none are pending.
func (ep *Endpoint) Poll(p *sim.Proc, max int) [][PayloadWords]uint32 {
	var replies [][PayloadWords]uint32
	for len(ep.inbox) > 0 && max > 0 {
		m := ep.inbox[0]
		ep.inbox = ep.inbox[1:]
		max--
		p.Sleep(dispatchCost)
		if m.isReply {
			ep.RepliesReceived++
			replies = append(replies, m.arg)
			continue
		}
		h, ok := ep.handlers[m.handler]
		if !ok {
			continue
		}
		if rep := h(p, m.src, m.arg); rep != nil {
			ep.host.CPU.MMIOWriteBytes(p, headerBytes+PayloadBytes)
			p.Sleep(lanaiCost)
			ep.host.Board.SendPacket(p, ep.host.Route, encode(true, m.handler, ep.id, *rep))
		}
	}
	return replies
}

// WaitReply polls until a reply arrives and returns it.
func (ep *Endpoint) WaitReply(p *sim.Proc) [PayloadWords]uint32 {
	for {
		if replies := ep.Poll(p, 8); len(replies) > 0 {
			return replies[0]
		}
		p.Sleep(pollInterval)
	}
}
