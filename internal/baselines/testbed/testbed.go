// Package testbed provides the shared two-node hardware rig the related-
// work protocol models (Myrinet API, FM, PM, AM) run on: the same
// simulated Myrinet boards and PCI buses as the VMMC implementation, so
// the Section 7 comparison varies only the protocol design.
package testbed

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/hostcpu"
	"repro/internal/hw"
	"repro/internal/lanai"
	"repro/internal/mem"
	"repro/internal/myrinet"
	"repro/internal/sim"
)

// Host is one endpoint: CPU, memory, PCI bus and Myrinet board.
type Host struct {
	ID    int
	Eng   *sim.Engine
	Prof  hw.Profile
	Phys  *mem.Physical
	PCI   *bus.Bus
	CPU   *hostcpu.CPU
	Board *lanai.Board
	// Route reaches the peer host.
	Route []byte
}

// Rig is a pair of hosts on one switch.
type Rig struct {
	Eng   *sim.Engine
	Prof  hw.Profile
	Net   *myrinet.Network
	Hosts [2]*Host
}

// New builds the rig. Routes are set statically (the mapping phase is
// exercised by the VMMC boot path; baselines start past it).
func New(eng *sim.Engine, prof hw.Profile) (*Rig, error) {
	r := &Rig{Eng: eng, Prof: prof, Net: myrinet.New(eng, prof)}
	sw := r.Net.AddSwitch(8)
	for i := 0; i < 2; i++ {
		nic := r.Net.AddNIC()
		if err := r.Net.AttachNIC(nic, sw, i); err != nil {
			return nil, err
		}
		pci := bus.New(eng, fmt.Sprintf("pci:%d", i))
		phys := mem.NewPhysical(16 << 20)
		r.Hosts[i] = &Host{
			ID:    i,
			Eng:   eng,
			Prof:  prof,
			Phys:  phys,
			PCI:   pci,
			CPU:   hostcpu.New(eng, prof, pci),
			Board: lanai.NewBoard(eng, prof, nic, phys, pci),
			Route: []byte{byte(1 - i)},
		}
	}
	return r, nil
}

// StartRX starts the host's two-stage receive path: a drain process that
// moves arriving packets into SRAM at wire rate (the net-to-SRAM DMA
// engine runs concurrently with the LANai CPU), and a handler process
// running fn per packet. Splitting the stages lets the drain of packet
// k+1 overlap the processing of packet k, as on the real board.
func (h *Host) StartRX(name string, fn func(p *sim.Proc, pk *myrinet.Packet)) {
	drained := sim.NewQueue[*myrinet.Packet](h.Eng, name+":drained")
	h.Eng.Go(name+":drain", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			pk := h.Board.NIC.RX.Get(p)
			h.Board.RecvPacket(p, pk)
			drained.Put(pk)
		}
	})
	h.Eng.Go(name+":handler", func(p *sim.Proc) {
		p.SetDaemon(true)
		for {
			fn(p, drained.Get(p))
		}
	})
}

// PinnedRegion allocates a physically contiguous, pinned region of n
// bytes on the host and returns its base physical address. The baseline
// protocols allocate their DMA staging rings this way at boot, which is
// what lets PM use transfer units larger than a page (§7).
func (h *Host) PinnedRegion(n int) (mem.PhysAddr, error) {
	pages := (n + mem.PageSize - 1) / mem.PageSize
	first, err := h.Phys.AllocContiguousFrames(pages)
	if err != nil {
		return 0, err
	}
	for i := 0; i < pages; i++ {
		h.Phys.Pin(first + i)
	}
	return mem.PhysAddr(first) << mem.PageShift, nil
}
