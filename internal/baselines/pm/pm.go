// Package pm models RWC's PM messaging protocol on the simulated Myrinet
// hardware (§7). PM's design points:
//
//   - messages are sent only from special pre-allocated, pinned,
//     physically contiguous send buffers, so DMA transfer units can
//     exceed the page size (8 KB units for peak pipelined bandwidth) —
//     but users must usually copy data into those buffers first, a cost
//     excluded from PM's quoted peak (§7);
//   - the current sender has exclusive access to the network interface:
//     minimal pickup cost and PM's lower latency, at the price of
//     requiring gang scheduling for protection and an expensive channel
//     state save/restore on context switch;
//   - Modified ACK/NACK flow control; multiple channels; polling or
//     interrupt notification (polling modeled here).
package pm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/baselines/testbed"
	"repro/internal/mem"
	"repro/internal/myrinet"
	"repro/internal/sim"
)

// Protocol constants and calibrated software costs.
const (
	// TransferUnit is PM's peak-bandwidth DMA unit (§7: 8 KBytes).
	TransferUnit = 8 << 10
	headerBytes  = 12
	// BufBytes is each side's pre-allocated pinned channel buffer.
	BufBytes = 256 << 10
)

var (
	postCost      = sim.Micros(0.5) // write the send descriptor
	lanaiPickup   = sim.Micros(0.8) // exclusive interface: no queue scan
	lanaiRecv     = sim.Micros(1.3)
	pollInterval  = sim.Micros(0.3)
	recvLibCost   = sim.Micros(1.2)
	channelSwitch = sim.Micros(180) // save/restore channel state (§7: expensive)

	// pioMax: small messages are pushed with programmed I/O, skipping the
	// host DMA (PM's eager small-message path).
	pioMax = 128
)

// System is a two-node PM installation.
type System struct {
	Eng *sim.Engine
	Rig *testbed.Rig

	ContextSwitches int64
}

// Channel is a PM communication channel between the two hosts, with
// pre-allocated pinned buffers on both sides.
type Channel struct {
	sys *System
	id  uint32

	sendPA [2]physRegion // per host: the pinned send buffer
	recvPA [2]physRegion

	// arrived holds, per host, message payloads delivered into the
	// pinned receive buffer and not yet consumed; partial accumulates the
	// in-order units of the message currently arriving.
	arrived [2][][]byte
	partial [2][]byte
}

type physRegion struct {
	base uint64
	size int
}

// New builds the system and starts the receive engines.
func New(eng *sim.Engine, rig *testbed.Rig) *System {
	return &System{Eng: eng, Rig: rig}
}

// OpenChannel allocates the pinned buffers on both hosts and starts the
// channel's receive loops.
func (s *System) OpenChannel(id uint32) (*Channel, error) {
	ch := &Channel{sys: s, id: id}
	for i := 0; i < 2; i++ {
		spa, err := s.Rig.Hosts[i].PinnedRegion(BufBytes)
		if err != nil {
			return nil, err
		}
		rpa, err := s.Rig.Hosts[i].PinnedRegion(BufBytes)
		if err != nil {
			return nil, err
		}
		ch.sendPA[i] = physRegion{base: uint64(spa), size: BufBytes}
		ch.recvPA[i] = physRegion{base: uint64(rpa), size: BufBytes}
	}
	for i := 0; i < 2; i++ {
		i := i
		s.Rig.Hosts[i].StartRX(fmt.Sprintf("pm:%d:%d", id, i), func(p *sim.Proc, pk *myrinet.Packet) {
			ch.handlePacket(p, i, pk)
		})
	}
	return ch, nil
}

// ContextSwitch charges the channel save/restore PM needs when another
// process takes over the exclusive interface (§7).
func (s *System) ContextSwitch(p *sim.Proc) {
	p.Sleep(channelSwitch)
	s.ContextSwitches++
}

// Send transmits data from host `from`'s pre-allocated send buffer. When
// includeCopy is set, the user's copy into that buffer is charged first —
// the cost PM's peak-bandwidth quote omits (§7). DMA runs in pipelined
// 8 KB units overlapping injection, since the buffer is physically
// contiguous and pinned.
func (ch *Channel) Send(p *sim.Proc, from int, data []byte, includeCopy bool) error {
	if len(data) == 0 || len(data) > BufBytes {
		return fmt.Errorf("pm: bad message size %d", len(data))
	}
	host := ch.sys.Rig.Hosts[from]
	if includeCopy {
		host.CPU.Bcopy(p, len(data))
	}
	// Stage the bytes "in" the pinned send buffer.
	if err := host.Phys.Write(mem.PhysAddr(ch.sendPA[from].base), data); err != nil {
		return err
	}
	hdr0 := make([]byte, headerBytes)
	hdr0[0] = byte(ch.id)
	binary.BigEndian.PutUint32(hdr0[2:], uint32(len(data)))
	if len(data) <= pioMax {
		// Eager small-message path: PIO straight into LANai memory.
		host.CPU.MMIOWriteBytes(p, headerBytes+len(data))
		p.Sleep(postCost + lanaiPickup)
		host.Board.SendPacket(p, host.Route, append(hdr0, data...))
		return nil
	}
	host.CPU.MMIOWriteWords(p, 4)
	p.Sleep(postCost + lanaiPickup)

	// Pipelined units: host DMA of unit k+1 overlaps injection of unit k.
	type unit struct{ off, n int }
	var staged *unit
	dmaDone := sim.NewCond(p.Engine())
	dmaBusy := false
	startDMA := func(u unit) {
		dmaBusy = true
		p.Engine().Go("pm:dma", func(dp *sim.Proc) {
			host.Board.HostDMA.TransferWith(dp, u.n, host.Prof.HostToLANai)
			dmaBusy = false
			staged = &u
			dmaDone.Broadcast()
		})
	}
	next := 0
	total := len(data)
	firstN := total - next
	if firstN > TransferUnit {
		firstN = TransferUnit
	}
	startDMA(unit{0, firstN})
	next = firstN
	for {
		for staged == nil {
			dmaDone.Wait(p)
		}
		u := *staged
		staged = nil
		if next < total {
			n := total - next
			if n > TransferUnit {
				n = TransferUnit
			}
			startDMA(unit{next, n})
			next += n
		}
		hdr := make([]byte, headerBytes)
		hdr[0] = byte(ch.id)
		binary.BigEndian.PutUint32(hdr[2:], uint32(total))
		binary.BigEndian.PutUint32(hdr[6:], uint32(u.off))
		host.Board.SendPacket(p, host.Route, append(hdr, data[u.off:u.off+u.n]...))
		if u.off+u.n >= total && !dmaBusy && staged == nil {
			break
		}
	}
	return nil
}

// handlePacket deposits an arriving unit into the pinned receive buffer.
// Units of one message arrive in order on the channel, so reassembly is a
// simple append.
func (ch *Channel) handlePacket(p *sim.Proc, at int, pk *myrinet.Packet) {
	host := ch.sys.Rig.Hosts[at]
	if len(pk.Payload) < headerBytes || !pk.CheckCRC() || pk.Payload[0] != byte(ch.id) {
		return
	}
	p.Sleep(lanaiRecv)
	total := int(binary.BigEndian.Uint32(pk.Payload[2:]))
	data := pk.Payload[headerBytes:]
	// DMA the unit into the pinned receive buffer (contiguous, so one
	// transfer regardless of page boundaries).
	host.Board.HostDMA.TransferWith(p, len(data), host.Prof.LANaiToHost)
	if err := host.Phys.Write(mem.PhysAddr(ch.recvPA[at].base), data); err != nil {
		panic(err)
	}
	ch.partial[at] = append(ch.partial[at], data...)
	if len(ch.partial[at]) >= total {
		ch.arrived[at] = append(ch.arrived[at], ch.partial[at][:total])
		ch.partial[at] = nil
	}
}

// Recv polls until a message is available at host `at` and returns its
// payload. The receiver reads directly from the pinned buffer (PM gives
// the receiver a buffer; a copy to user structures would be extra).
func (ch *Channel) Recv(p *sim.Proc, at int) []byte {
	for len(ch.arrived[at]) == 0 {
		p.Sleep(pollInterval)
	}
	p.Sleep(recvLibCost)
	m := ch.arrived[at][0]
	ch.arrived[at] = ch.arrived[at][1:]
	return m
}
