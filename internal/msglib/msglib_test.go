package msglib

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vmmc"
)

// pair builds a two-node cluster with connected ports and runs fn.
func pair(t *testing.T, ringBytes int, fn func(p *sim.Proc, a, b *Port)) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := vmmc.NewCluster(eng, vmmc.Options{Nodes: 2, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	c.Go("msglib", func(p *sim.Proc) {
		procA, err := c.Nodes[0].NewProcess(p)
		if err != nil {
			t.Error(err)
			return
		}
		procB, err := c.Nodes[1].NewProcess(p)
		if err != nil {
			t.Error(err)
			return
		}
		a, err := NewPort(p, procA, 1, ringBytes)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := NewPort(p, procB, 2, ringBytes)
		if err != nil {
			t.Error(err)
			return
		}
		if err := a.Connect(p, 1, 2); err != nil {
			t.Error(err)
			return
		}
		if err := b.Connect(p, 0, 1); err != nil {
			t.Error(err)
			return
		}
		fn(p, a, b)
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	pair(t, 16*mem.PageSize, func(p *sim.Proc, a, b *Port) {
		msg := []byte("tagged message over vmmc")
		if err := a.Send(p, 7, msg); err != nil {
			t.Fatal(err)
		}
		tag, got, err := b.Recv(p)
		if err != nil {
			t.Fatal(err)
		}
		if tag != 7 || !bytes.Equal(got, msg) {
			t.Errorf("recv = tag %d, %q", tag, got)
		}
	})
}

func TestBidirectionalPingPong(t *testing.T) {
	pair(t, 16*mem.PageSize, func(p *sim.Proc, a, b *Port) {
		done := false
		p.Engine().Go("echo", func(bp *sim.Proc) {
			for i := 0; i < 20; i++ {
				tag, m, err := b.Recv(bp)
				if err != nil {
					t.Error(err)
					return
				}
				if err := b.Send(bp, tag+100, m); err != nil {
					t.Error(err)
					return
				}
			}
			done = true
		})
		for i := 0; i < 20; i++ {
			msg := []byte{byte(i), byte(i + 1)}
			if err := a.Send(p, uint32(i), msg); err != nil {
				t.Fatal(err)
			}
			tag, got, err := a.Recv(p)
			if err != nil {
				t.Fatal(err)
			}
			if tag != uint32(i+100) || !bytes.Equal(got, msg) {
				t.Fatalf("iteration %d: tag %d, %v", i, tag, got)
			}
		}
		for !done {
			p.Sleep(sim.Microsecond)
		}
	})
}

func TestRingWrapAndFlowControl(t *testing.T) {
	// Stream far more data than the ring holds, with messages sized to
	// force wraps at awkward offsets. Flow control must stall the sender
	// rather than overwrite, and every message arrives intact in order.
	const ring = 2 * mem.PageSize
	pair(t, ring, func(p *sim.Proc, a, b *Port) {
		rng := rand.New(rand.NewSource(42))
		const count = 120
		sizes := make([]int, count)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(ring/3)
		}
		p.Engine().Go("producer", func(sp *sim.Proc) {
			for i, n := range sizes {
				msg := bytes.Repeat([]byte{byte(i + 1)}, n)
				if err := a.Send(sp, uint32(i), msg); err != nil {
					t.Error(err)
					return
				}
			}
		})
		for i, n := range sizes {
			tag, got, err := b.Recv(p)
			if err != nil {
				t.Fatal(err)
			}
			if tag != uint32(i) {
				t.Fatalf("message %d: tag %d", i, tag)
			}
			if len(got) != n {
				t.Fatalf("message %d: len %d, want %d", i, len(got), n)
			}
			for _, bb := range got {
				if bb != byte(i+1) {
					t.Fatalf("message %d corrupted", i)
				}
			}
		}
	})
}

func TestZeroCopyReceive(t *testing.T) {
	pair(t, 16*mem.PageSize, func(p *sim.Proc, a, b *Port) {
		big := bytes.Repeat([]byte{0xAB}, 3*mem.PageSize)
		if err := a.Send(p, 1, big); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(p, 2, []byte("second")); err != nil {
			t.Fatal(err)
		}

		start := p.Now()
		tag, view, release, err := b.RecvZeroCopy(p)
		zcTime := p.Now() - start
		if err != nil || tag != 1 || !bytes.Equal(view, big) {
			t.Fatalf("zero-copy recv: tag %d err %v", tag, err)
		}
		if err := release(p); err != nil {
			t.Fatal(err)
		}
		if err := release(p); err != ErrReleased {
			t.Errorf("double release = %v", err)
		}

		// Ordering is preserved across the zero-copy receive.
		tag, got2, err := b.Recv(p)
		if err != nil || tag != 2 {
			t.Fatalf("order broken after zero-copy: tag %d err %v", tag, err)
		}
		if string(got2) != "second" {
			t.Errorf("second message = %q", got2)
		}
		// Another large round trip still works after the mixed receives.
		if err := a.Send(p, 3, big); err != nil {
			t.Fatal(err)
		}
		tag, got3, err := b.Recv(p)
		if err != nil || tag != 3 || !bytes.Equal(got3, big) {
			t.Fatalf("third message: tag %d err %v", tag, err)
		}
		_ = zcTime
	})
}

func TestCopyCostMeasurable(t *testing.T) {
	// Recv charges the ring-to-user copy; RecvZeroCopy does not. For a
	// 3-page message at ~50 MB/s that's ~250 us of difference.
	const n = 3 * mem.PageSize
	timeRecv := func(zero bool) sim.Time {
		var d sim.Time
		pair(t, 16*mem.PageSize, func(p *sim.Proc, a, b *Port) {
			big := bytes.Repeat([]byte{1}, n)
			if err := a.Send(p, 1, big); err != nil {
				t.Fatal(err)
			}
			// Wait until fully arrived so only the receive path is timed.
			b.proc.SpinUntil(p, func() bool { return b.frameReady() })
			start := p.Now()
			if zero {
				_, _, release, err := b.RecvZeroCopy(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := release(p); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, _, err := b.Recv(p); err != nil {
					t.Fatal(err)
				}
			}
			d = p.Now() - start
		})
		return d
	}
	withCopy := timeRecv(false)
	zeroCopy := timeRecv(true)
	t.Logf("Recv = %v, RecvZeroCopy = %v", withCopy, zeroCopy)
	if withCopy < zeroCopy+sim.Micros(200) {
		t.Errorf("copying receive (%v) should cost ~bcopy more than zero-copy (%v)", withCopy, zeroCopy)
	}
}

func TestTooBigRejected(t *testing.T) {
	pair(t, mem.PageSize, func(p *sim.Proc, a, b *Port) {
		if err := a.Send(p, 1, make([]byte, mem.PageSize)); err != ErrTooBig {
			t.Errorf("oversized send = %v, want ErrTooBig", err)
		}
	})
}

func TestUnconnectedSendFails(t *testing.T) {
	eng := sim.NewEngine()
	c, err := vmmc.NewCluster(eng, vmmc.Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Go("t", func(p *sim.Proc) {
		proc, _ := c.Nodes[0].NewProcess(p)
		pt, err := NewPort(p, proc, 1, mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.Send(p, 1, []byte("x")); err == nil {
			t.Error("send on unconnected port succeeded")
		}
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
}

func TestBadRingSize(t *testing.T) {
	eng := sim.NewEngine()
	c, err := vmmc.NewCluster(eng, vmmc.Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Go("t", func(p *sim.Proc) {
		proc, _ := c.Nodes[0].NewProcess(p)
		if _, err := NewPort(p, proc, 1, 100); err != ErrBadRing {
			t.Errorf("NewPort(100) = %v, want ErrBadRing", err)
		}
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameGeometry(t *testing.T) {
	for n := 0; n < 64; n++ {
		fb := frameBytes(n)
		if fb%8 != 0 {
			t.Errorf("frameBytes(%d) = %d, not 8-aligned", n, fb)
		}
		if seqOffset(n)+frameSeq > fb {
			t.Errorf("seq flag outside frame for n=%d", n)
		}
		if fb < frameHdr+n+frameSeq {
			t.Errorf("frameBytes(%d) = %d too small", n, fb)
		}
	}
}
