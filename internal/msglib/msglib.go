// Package msglib is a protected, user-level message-passing library built
// entirely on the VMMC primitives — the style of layer the paper's
// introduction motivates and its predecessor work ([8], "Early experience
// with message-passing on the SHRIMP multicomputer") built on the same
// model. It demonstrates the claims of §2: user-level buffer management,
// zero-copy protocols, and no operating-system involvement on the data
// path.
//
// Each Port exports a receive ring and a small control page. A connection
// imports the peer's ring; Send reserves space using a locally mirrored
// consumption counter (written back by the receiver through VMMC itself),
// frames the message, and deliberate-updates it into the ring. Receive is
// a poll of local memory; RecvZeroCopy hands out a view of the ring with
// no copy at all.
package msglib

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vmmc"
)

// Errors.
var (
	ErrTooBig   = errors.New("msglib: message exceeds ring capacity")
	ErrBadRing  = errors.New("msglib: ring size must be a multiple of the page size")
	ErrReleased = errors.New("msglib: zero-copy view already released")
)

// Frame layout in the ring:
//
//	[len uint32][tag uint32][payload ... pad to 4][seq uint32]
//
// The trailing seq flag is written last on the wire (VMMC delivers chunks
// in order), so its arrival means the frame is complete. A frame never
// wraps: when the tail would, the sender writes a wrap marker
// ([wrapLen][seq]) and continues at offset zero.
const (
	frameHdr  = 8
	frameSeq  = 4
	wrapLen   = 0xFFFFFFFF
	wrapBytes = 8

	// ctl page layout: the receiver's consumed-byte counter lives at
	// offset 0 of the exporter's control page, written remotely by the
	// receiver's flow-control updates.
	ctlBytes = mem.PageSize

	portTagBase = 0xB000
	ctlTagBase  = 0xB800
)

// pad4 rounds the payload up to word alignment; the sequence flag follows
// it, and the whole frame is rounded to 8 bytes so the ring head stays
// 8-aligned (guaranteeing a wrap marker always fits in the tail gap).
func pad4(n int) int { return (n + 3) &^ 3 }

func seqOffset(n int) int { return frameHdr + pad4(n) }

func frameBytes(n int) int {
	return (seqOffset(n) + frameSeq + 7) &^ 7
}

// Port is a named message-passing endpoint on a process: an exported
// receive ring plus an exported control page for the peer's flow-control
// mirror.
type Port struct {
	proc   *vmmc.Process
	id     uint32
	ring   mem.VirtAddr
	ringSz int
	ctl    mem.VirtAddr

	// Receive state.
	tail     int
	expected uint32
	consumed uint64 // total bytes consumed, pushed to the sender's mirror

	// Connection state (set by Connect).
	peerNode  int
	peerPort  uint32
	dataDest  vmmc.ProxyAddr // peer's ring
	ctlDest   vmmc.ProxyAddr // peer's control page (our consumed mirror lives there)
	head      int
	seq       uint32
	produced  uint64
	peerRing  int
	staging   mem.VirtAddr
	ctlStage  mem.VirtAddr
	lastPush  uint64
	connected bool
}

// NewPort exports a receive ring of ringBytes (multiple of the page size)
// under the given port id.
func NewPort(p *sim.Proc, proc *vmmc.Process, id uint32, ringBytes int) (*Port, error) {
	if ringBytes <= 0 || ringBytes%mem.PageSize != 0 {
		return nil, ErrBadRing
	}
	ring, err := proc.Malloc(ringBytes)
	if err != nil {
		return nil, err
	}
	ctl, err := proc.Malloc(ctlBytes)
	if err != nil {
		return nil, err
	}
	if err := proc.Export(p, portTagBase+id, ring, ringBytes, nil, false); err != nil {
		return nil, err
	}
	if err := proc.Export(p, ctlTagBase+id, ctl, ctlBytes, nil, false); err != nil {
		return nil, err
	}
	pt := &Port{
		proc:     proc,
		id:       id,
		ring:     ring,
		ringSz:   ringBytes,
		ctl:      ctl,
		expected: 1,
	}
	return pt, nil
}

// Connect imports the peer port's ring and control page, making the port
// able to Send. Both sides connect to each other for a bidirectional
// channel.
func (pt *Port) Connect(p *sim.Proc, peerNode int, peerPort uint32) error {
	dataDest, peerRing, err := pt.proc.Import(p, peerNode, portTagBase+peerPort)
	if err != nil {
		return err
	}
	ctlDest, _, err := pt.proc.Import(p, peerNode, ctlTagBase+peerPort)
	if err != nil {
		return err
	}
	staging, err := pt.proc.Malloc(peerRing)
	if err != nil {
		return err
	}
	ctlStage, err := pt.proc.Malloc(mem.PageSize)
	if err != nil {
		return err
	}
	pt.peerNode, pt.peerPort = peerNode, peerPort
	pt.dataDest, pt.ctlDest = dataDest, ctlDest
	pt.peerRing = peerRing
	pt.staging = staging
	pt.ctlStage = ctlStage
	pt.seq = 1
	pt.connected = true
	return nil
}

// freeSpace is the sender's view of the peer ring's free bytes: produced
// minus the consumed counter the receiver pushes into our control page.
func (pt *Port) freeSpace() int {
	b, err := pt.proc.Read(pt.ctl, 8)
	if err != nil {
		panic(err)
	}
	consumed := binary.BigEndian.Uint64(b)
	return pt.peerRing - int(pt.produced-consumed)
}

// Send transmits a tagged message into the peer's ring, blocking while the
// ring lacks space (sender-based flow control: no receive posting, no
// buffering, no drops — the advantage §7 claims over FM/PM reception).
func (pt *Port) Send(p *sim.Proc, tag uint32, data []byte) error {
	if !pt.connected {
		return fmt.Errorf("msglib: port %d not connected", pt.id)
	}
	need := frameBytes(len(data))
	if need+wrapBytes > pt.peerRing {
		return ErrTooBig
	}
	// Account a possible wrap marker.
	wrap := false
	if pt.head+need > pt.peerRing {
		wrap = true
		need += pt.peerRing - pt.head // the wasted tail
	}
	pt.proc.SpinUntil(p, func() bool { return pt.freeSpace() >= need+wrapBytes })

	if wrap {
		wasted := pt.peerRing - pt.head
		marker := make([]byte, wrapBytes)
		binary.BigEndian.PutUint32(marker[0:], wrapLen)
		binary.BigEndian.PutUint32(marker[4:], pt.seq)
		pt.seq++
		if err := pt.proc.Write(pt.staging, marker); err != nil {
			return err
		}
		if err := pt.proc.SendMsgSync(p, pt.staging, pt.dataDest+vmmc.ProxyAddr(pt.head), wrapBytes, vmmc.SendOptions{}); err != nil {
			return err
		}
		pt.produced += uint64(wasted)
		pt.head = 0
	}

	fb := frameBytes(len(data))
	frame := make([]byte, fb)
	binary.BigEndian.PutUint32(frame[0:], uint32(len(data)))
	binary.BigEndian.PutUint32(frame[4:], tag)
	copy(frame[frameHdr:], data)
	binary.BigEndian.PutUint32(frame[seqOffset(len(data)):], pt.seq)
	pt.seq++
	if err := pt.proc.Write(pt.staging, frame); err != nil {
		return err
	}
	if err := pt.proc.SendMsgSync(p, pt.staging, pt.dataDest+vmmc.ProxyAddr(pt.head), fb, vmmc.SendOptions{}); err != nil {
		return err
	}
	pt.head += fb
	if pt.head == pt.peerRing {
		pt.head = 0
	}
	pt.produced += uint64(fb)
	return nil
}

// recvFrame locates the next complete frame in the local ring.
func (pt *Port) recvFrame(p *sim.Proc) (tag uint32, off, n int) {
	for {
		pt.proc.SpinUntil(p, func() bool { return pt.frameReady() })
		hdr, err := pt.proc.Read(pt.ring+mem.VirtAddr(pt.tail), frameHdr)
		if err != nil {
			panic(err)
		}
		length := binary.BigEndian.Uint32(hdr[0:])
		if length == wrapLen {
			pt.bump(pt.ringSz - pt.tail) // the whole wasted tail
			pt.tail = 0
			pt.expected++
			continue
		}
		tag = binary.BigEndian.Uint32(hdr[4:])
		off = pt.tail + frameHdr
		n = int(length)
		return tag, off, n
	}
}

// frameReady checks whether a complete frame (or wrap marker) with the
// expected sequence sits at the tail.
func (pt *Port) frameReady() bool {
	hdr, err := pt.proc.Read(pt.ring+mem.VirtAddr(pt.tail), 4)
	if err != nil {
		return false
	}
	length := binary.BigEndian.Uint32(hdr)
	var seqOff int
	switch {
	case length == wrapLen:
		seqOff = pt.tail + 4
	case pt.tail+frameBytes(int(length)) <= pt.ringSz:
		seqOff = pt.tail + seqOffset(int(length))
	default:
		return false // implausible length: bytes still arriving
	}
	sb, err := pt.proc.Read(pt.ring+mem.VirtAddr(seqOff), 4)
	if err != nil {
		return false
	}
	return binary.BigEndian.Uint32(sb) == pt.expected
}

// bump advances consumption accounting by n bytes.
func (pt *Port) bump(n int) {
	pt.consumed += uint64(n)
}

// pushConsumed writes the consumed counter back to the sender's mirror
// when enough has drained — VMMC traffic like any other.
func (pt *Port) pushConsumed(p *sim.Proc) error {
	if pt.consumed-pt.lastPush < uint64(pt.ringSz/4) || !pt.connected {
		return nil
	}
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, pt.consumed)
	if err := pt.proc.Write(pt.ctlStage, buf); err != nil {
		return err
	}
	if err := pt.proc.SendMsgSync(p, pt.ctlStage, pt.ctlDest, 8, vmmc.SendOptions{}); err != nil {
		return err
	}
	pt.lastPush = pt.consumed
	return nil
}

// Recv blocks for the next message and returns its tag and a copy of its
// payload. The copy out of the ring is charged at bcopy speed — the cost
// RecvZeroCopy avoids.
func (pt *Port) Recv(p *sim.Proc) (uint32, []byte, error) {
	tag, off, n := pt.recvFrame(p)
	data, err := pt.proc.Read(pt.ring+mem.VirtAddr(off), n)
	if err != nil {
		return 0, nil, err
	}
	pt.proc.Node.CPU.Bcopy(p, n)
	pt.finish(n)
	return tag, data, pt.pushConsumed(p)
}

// RecvZeroCopy blocks for the next message and returns a live view into
// the receive ring — no copy at all, the VMMC way. The caller must invoke
// release() before the next Recv on this port; the ring space is not
// reusable (and the sender may stall) until then.
func (pt *Port) RecvZeroCopy(p *sim.Proc) (tag uint32, view []byte, release func(*sim.Proc) error, err error) {
	tag, off, n := pt.recvFrame(p)
	view, err = pt.proc.Read(pt.ring+mem.VirtAddr(off), n)
	if err != nil {
		return 0, nil, nil, err
	}
	released := false
	release = func(rp *sim.Proc) error {
		if released {
			return ErrReleased
		}
		released = true
		pt.finish(n)
		return pt.pushConsumed(rp)
	}
	return tag, view, release, nil
}

// finish advances the tail past the consumed frame.
func (pt *Port) finish(n int) {
	fb := frameBytes(n)
	pt.bump(fb)
	pt.tail += fb
	if pt.tail == pt.ringSz {
		pt.tail = 0
	}
	pt.expected++
}
