package shrimp

import (
	"bytes"
	"testing"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
)

func pairSetup(t *testing.T) (*sim.Engine, *System, func(p *sim.Proc) (*Process, *Process, ProxyAddr)) {
	t.Helper()
	eng := sim.NewEngine()
	sys := New(eng, hw.DefaultSHRIMP(), 2, 16<<20)
	setup := func(p *sim.Proc) (*Process, *Process, ProxyAddr) {
		recv := sys.Nodes[1].NewProcess()
		send := sys.Nodes[0].NewProcess()
		buf, err := recv.Malloc(64 * mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := recv.Export(p, 1, buf, 64*mem.PageSize, nil); err != nil {
			t.Fatal(err)
		}
		dest, _, err := send.Import(p, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return send, recv, dest
	}
	return eng, sys, setup
}

func TestDeliberateUpdateDelivers(t *testing.T) {
	eng, sys, setup := pairSetup(t)
	eng.Go("test", func(p *sim.Proc) {
		send, recv, dest := setup(p)
		src, _ := send.Malloc(mem.PageSize)
		msg := []byte("shrimp deliberate update")
		if err := send.Write(src, msg); err != nil {
			t.Fatal(err)
		}
		if err := send.SendDeliberate(p, src, dest+ProxyAddr(77), len(msg)); err != nil {
			t.Fatal(err)
		}
		// Find the receive buffer: the only export on node 1.
		exp := sys.Nodes[1].exports[1]
		got, _ := recv.Read(exp.va+77, len(msg))
		if !bytes.Equal(got, msg) {
			t.Errorf("receiver memory = %q", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPageTransferIntegrity(t *testing.T) {
	eng, sys, setup := pairSetup(t)
	eng.Go("test", func(p *sim.Proc) {
		send, recv, dest := setup(p)
		const size = 5*mem.PageSize + 123
		src, _ := send.Malloc(6 * mem.PageSize)
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(3 * i)
		}
		if err := send.Write(src+9, msg); err != nil {
			t.Fatal(err)
		}
		if err := send.SendDeliberate(p, src+9, dest+ProxyAddr(2000), size); err != nil {
			t.Fatal(err)
		}
		exp := sys.Nodes[1].exports[1]
		got, _ := recv.Read(exp.va+2000, size)
		if !bytes.Equal(got, msg) {
			t.Error("multi-page transfer corrupted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShrimpProtection(t *testing.T) {
	eng, _, setup := pairSetup(t)
	eng.Go("test", func(p *sim.Proc) {
		send, _, dest := setup(p)
		src, _ := send.Malloc(65 * mem.PageSize)
		if err := send.SendDeliberate(p, src, dest, 64*mem.PageSize+1); err != ErrOutOfRange {
			t.Errorf("overrun got %v, want ErrOutOfRange", err)
		}
		if err := send.SendDeliberate(p, src, ProxyAddr(1<<30), 8); err != ErrNotImported {
			t.Errorf("bad proxy got %v, want ErrNotImported", err)
		}
		if err := send.SendDeliberate(p, src+100*mem.PageSize, dest, 8); err != ErrBadBuffer {
			t.Errorf("unmapped src got %v, want ErrBadBuffer", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShrimpImportRestrictions(t *testing.T) {
	eng := sim.NewEngine()
	sys := New(eng, hw.DefaultSHRIMP(), 3, 16<<20)
	eng.Go("test", func(p *sim.Proc) {
		exp := sys.Nodes[0].NewProcess()
		buf, _ := exp.Malloc(mem.PageSize)
		if err := exp.Export(p, 5, buf, mem.PageSize, []int{1}); err != nil {
			t.Fatal(err)
		}
		ok := sys.Nodes[1].NewProcess()
		if _, _, err := ok.Import(p, 0, 5); err != nil {
			t.Errorf("allowed import failed: %v", err)
		}
		bad := sys.Nodes[2].NewProcess()
		if _, _, err := bad.Import(p, 0, 5); err != ErrDenied {
			t.Errorf("denied import got %v", err)
		}
		if _, _, err := ok.Import(p, 0, 99); err != ErrNoSuchExport {
			t.Errorf("missing export got %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// Section 6 calibration: SHRIMP's comparison numbers.

func TestShrimpOneWordLatency(t *testing.T) {
	eng, sys, setup := pairSetup(t)
	eng.Go("test", func(p *sim.Proc) {
		send, _, dest := setup(p)
		lat, err := sys.OneWordLatency(p, send, dest)
		if err != nil {
			t.Fatal(err)
		}
		us := lat.Micros()
		t.Logf("SHRIMP one-word latency = %.2f us (paper: ~7)", us)
		if us < 6.5 || us > 7.6 {
			t.Errorf("latency = %.2f us, want ~7", us)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShrimpInitiationOverhead(t *testing.T) {
	sys := New(sim.NewEngine(), hw.DefaultSHRIMP(), 2, 16<<20)
	us := sys.InitiationOverhead().Micros()
	t.Logf("SHRIMP send initiation = %.2f us (paper: 2-3)", us)
	if us < 2.0 || us > 3.0 {
		t.Errorf("initiation = %.2f us, want 2-3", us)
	}
}

func TestShrimpBandwidth(t *testing.T) {
	eng, _, setup := pairSetup(t)
	eng.Go("test", func(p *sim.Proc) {
		send, _, dest := setup(p)
		src, _ := send.Malloc(64 * mem.PageSize)
		const total = 64 * mem.PageSize
		start := p.Now()
		if err := send.SendDeliberate(p, src, dest, total); err != nil {
			t.Fatal(err)
		}
		elapsed := p.Now() - start
		mbps := total / elapsed.Seconds() / 1e6
		t.Logf("SHRIMP user-to-user bandwidth = %.1f MB/s (paper: 23, the EISA hardware limit)", mbps)
		if mbps < 22 || mbps > 24 {
			t.Errorf("bandwidth = %.1f MB/s, want ~23", mbps)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAutomaticUpdate(t *testing.T) {
	// SHRIMP's second transfer mode (§6 footnote 3): writes to a bound
	// region propagate to the importer with near-zero sender overhead.
	eng, sys, setup := pairSetup(t)
	eng.Go("test", func(p *sim.Proc) {
		send, recv, dest := setup(p)
		local, _ := send.Malloc(4 * mem.PageSize)
		if err := send.BindAutomatic(p, local, dest, 4*mem.PageSize); err != nil {
			t.Fatal(err)
		}
		// Sender overhead for an automatic-update write must be far
		// below a deliberate update of the same size.
		data := bytes.Repeat([]byte{0x5C}, 1024)
		start := p.Now()
		if err := send.WriteAuto(p, local+200, data); err != nil {
			t.Fatal(err)
		}
		autoCost := p.Now() - start
		src, _ := send.Malloc(mem.PageSize)
		start = p.Now()
		// To a disjoint part of the window, so it cannot clobber the
		// automatic-update region.
		if err := send.SendDeliberate(p, src, dest+ProxyAddr(8*mem.PageSize), 1024); err != nil {
			t.Fatal(err)
		}
		delibCost := p.Now() - start
		if autoCost*10 > delibCost {
			t.Errorf("automatic update costs %v at the sender, deliberate %v; should be ~free", autoCost, delibCost)
		}
		// The data arrives (asynchronously).
		p.Sleep(10 * sim.Millisecond)
		exp := sys.Nodes[1].exports[1]
		got, _ := recv.Read(exp.va+200, len(data))
		if !bytes.Equal(got, data) {
			t.Error("automatic update did not propagate")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAutomaticUpdateValidation(t *testing.T) {
	eng, _, setup := pairSetup(t)
	eng.Go("test", func(p *sim.Proc) {
		send, _, dest := setup(p)
		local, _ := send.Malloc(2 * mem.PageSize)
		if err := send.BindAutomatic(p, local+1, dest, mem.PageSize); err == nil {
			t.Error("unaligned automatic binding accepted")
		}
		if err := send.BindAutomatic(p, local, ProxyAddr(1<<30), mem.PageSize); err == nil {
			t.Error("binding to unimported destination accepted")
		}
		if err := send.WriteAuto(p, local, []byte{1}); err == nil {
			t.Error("WriteAuto outside any binding accepted")
		}
		if err := send.BindAutomatic(p, local, dest, mem.PageSize); err != nil {
			t.Fatal(err)
		}
		// Writes crossing the binding end are rejected.
		if err := send.WriteAuto(p, local+mem.PageSize-1, []byte{1, 2}); err == nil {
			t.Error("WriteAuto past binding end accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
