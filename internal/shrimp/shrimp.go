// Package shrimp models VMMC on the SHRIMP multicomputer, the paper's
// comparison platform (§6): a custom network interface on the EISA bus
// whose deliberate-update transfers are initiated entirely in hardware.
//
// The contrasts with the Myrinet implementation that §6 draws are all
// present in the model:
//
//   - a send is initiated with just two memory-mapped I/O writes; the
//     hardware state machine verifies permissions, indexes the outgoing
//     page table and starts sending in ~2-3 us total — no queue scanning,
//     no software translation;
//   - the destination proxy space is part of the sender's virtual address
//     space, with virtual memory mappings providing protection, so the OS
//     must maintain special proxy mappings (more OS support than Myrinet);
//   - a send spanning multiple pages must be re-initiated with two writes
//     per page (the Myrinet LCP takes one request for up to 8 MB);
//   - the EISA bus caps user-to-user bandwidth at 23 MB/s, which the
//     hardware state machine delivers in full — no software state machine
//     eating the last 2%;
//   - because the two initiating writes are not atomic, the state machine
//     must be invalidated on context switch (modeled as a per-switch cost
//     hook), whereas Myrinet's per-process queues need no such thing.
//
// Data moves for real between simulated address spaces so the same
// integrity and protection tests run against both platforms.
package shrimp

import (
	"errors"
	"fmt"

	"repro/internal/bus"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Errors mirror the VMMC library's where behaviour matches.
var (
	ErrNotImported  = errors.New("shrimp: proxy address not imported")
	ErrOutOfRange   = errors.New("shrimp: transfer exceeds imported buffer")
	ErrDenied       = errors.New("shrimp: import denied")
	ErrNoSuchExport = errors.New("shrimp: no matching export")
	ErrBadBuffer    = errors.New("shrimp: invalid buffer")
)

// System is a SHRIMP multicomputer: nodes on a fast, fixed-latency
// backplane network.
type System struct {
	Eng   *sim.Engine
	Prof  hw.SHRIMPProfile
	Nodes []*Node
}

// Node is one SHRIMP node: Pentium host, EISA bus, SHRIMP interface.
type Node struct {
	ID   int
	sys  *System
	Phys *mem.Physical
	EISA *bus.Bus
	// DMA is the interface's EISA data engine.
	DMA *bus.DMAEngine

	// Activity is broadcast when the interface deposits data into the
	// node's memory, so pollers can park while idle.
	Activity *sim.Cond

	exports map[uint32]*export
	procs   []*Process
}

type export struct {
	proc    *Process
	va      mem.VirtAddr
	length  int
	allowed []int // importer node ids; nil = all
	frames  []int
}

// Process is a user process on a SHRIMP node.
type Process struct {
	Node    *Node
	AS      *mem.AddressSpace
	imports map[int]*importRec // key: proxy base page
	// proxyBrk allocates proxy pages within the sender's own address
	// space (§6: destination space is part of the sender's VA space).
	proxyBrk int
	// autoBindings are the automatic-update mappings (automatic.go).
	autoBindings []autoBinding
}

type importRec struct {
	destNode int
	basePage int
	pages    int
	length   int
	frames   []int
}

// ProxyAddr is a destination address in the sender's proxy region.
type ProxyAddr uint64

func (a ProxyAddr) page() int   { return int(a >> mem.PageShift) }
func (a ProxyAddr) offset() int { return int(a & mem.PageMask) }

// New builds an n-node SHRIMP system.
func New(eng *sim.Engine, prof hw.SHRIMPProfile, n, memBytes int) *System {
	s := &System{Eng: eng, Prof: prof}
	for i := 0; i < n; i++ {
		eisa := bus.New(eng, fmt.Sprintf("eisa:%d", i))
		node := &Node{
			ID:       i,
			sys:      s,
			Phys:     mem.NewPhysical(memBytes),
			EISA:     eisa,
			DMA:      bus.NewDMAEngine(eng, fmt.Sprintf("shrimp%d:dma", i), prof.DMA, eisa),
			Activity: sim.NewCond(eng),
			exports:  make(map[uint32]*export),
		}
		s.Nodes = append(s.Nodes, node)
	}
	return s
}

// NewProcess creates a process on the node.
func (n *Node) NewProcess() *Process {
	p := &Process{
		Node:    n,
		AS:      mem.NewAddressSpace(n.Phys),
		imports: make(map[int]*importRec),
	}
	n.procs = append(n.procs, p)
	return p
}

// Malloc allocates page-aligned virtual memory.
func (p *Process) Malloc(nbytes int) (mem.VirtAddr, error) { return p.AS.Alloc(nbytes) }

// Write stores into the process's memory.
func (p *Process) Write(va mem.VirtAddr, data []byte) error { return p.AS.WriteBytes(va, data) }

// Read loads from the process's memory.
func (p *Process) Read(va mem.VirtAddr, nbytes int) ([]byte, error) {
	return p.AS.ReadBytes(va, nbytes)
}

// Export publishes [va, va+n) as a receive buffer under tag. The pages are
// locked and the incoming mappings installed (same export-import protocol
// and daemon code as the Myrinet implementation, §6).
func (p *Process) Export(sp *sim.Proc, tag uint32, va mem.VirtAddr, n int, allowedNodes []int) error {
	if va.Offset() != 0 || n <= 0 || !p.AS.Mapped(va, n) {
		return ErrBadBuffer
	}
	span := mem.PageSpan(va, n)
	frames := make([]int, span)
	for i := 0; i < span; i++ {
		pa, err := p.AS.Translate(va + mem.VirtAddr(i*mem.PageSize))
		if err != nil {
			return err
		}
		p.Node.Phys.Pin(pa.Frame())
		frames[i] = pa.Frame()
	}
	p.Node.exports[tag] = &export{proc: p, va: va, length: n, allowed: allowedNodes, frames: frames}
	sp.Sleep(30 * sim.Microsecond) // daemon IPC, as on Myrinet
	return nil
}

// Import maps a remote export into the sender's proxy region. The OS
// installs proxy mappings into the sender's address space (§6: more OS
// support than the Myrinet implementation needs).
func (p *Process) Import(sp *sim.Proc, node int, tag uint32) (ProxyAddr, int, error) {
	sp.Sleep(2 * sim.Millisecond) // daemon round trip over Ethernet
	remote := p.Node.sys.Nodes[node]
	exp, ok := remote.exports[tag]
	if !ok {
		return 0, 0, ErrNoSuchExport
	}
	if exp.allowed != nil {
		found := false
		for _, a := range exp.allowed {
			if a == p.Node.ID {
				found = true
			}
		}
		if !found {
			return 0, 0, ErrDenied
		}
	}
	base := p.proxyBrk
	pages := len(exp.frames)
	p.proxyBrk += pages
	p.imports[base] = &importRec{
		destNode: node,
		basePage: base,
		pages:    pages,
		length:   exp.length,
		frames:   exp.frames,
	}
	return ProxyAddr(base) << mem.PageShift, exp.length, nil
}

// findImport resolves a proxy address to its import record.
func (p *Process) findImport(dest ProxyAddr, n int) (*importRec, int, error) {
	for base, rec := range p.imports {
		start := base * mem.PageSize
		if int(dest) >= start && int(dest) < start+rec.pages*mem.PageSize {
			off := int(dest) - start
			if off+n > rec.length {
				return nil, 0, ErrOutOfRange
			}
			return rec, off, nil
		}
	}
	return nil, 0, ErrNotImported
}
