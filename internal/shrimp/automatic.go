package shrimp

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Automatic update (§6, footnote 3): SHRIMP's second transfer mode. The
// interface's memory-bus snooping card watches writes to bound local
// pages and propagates them to the imported destination automatically —
// the sender pays (almost) nothing beyond its ordinary stores, and no
// explicit send is ever issued. Myrinet cannot offer this mode because
// the PCI card cannot observe the memory bus, which is why the paper's
// comparison uses deliberate update only; this file implements the mode
// as the natural SHRIMP extension.

// autoBinding maps a local page-aligned region to an imported destination.
type autoBinding struct {
	localVA mem.VirtAddr
	dest    ProxyAddr
	length  int
}

// BindAutomatic establishes an automatic-update mapping: subsequent
// WriteAuto stores into [localVA, localVA+n) propagate to the imported
// destination at the same offset. The local region must be page aligned
// (the snooping card matches physical pages).
func (p *Process) BindAutomatic(sp *sim.Proc, localVA mem.VirtAddr, dest ProxyAddr, n int) error {
	if localVA.Offset() != 0 || n <= 0 || !p.AS.Mapped(localVA, n) {
		return ErrBadBuffer
	}
	if _, _, err := p.findImport(dest, n); err != nil {
		return err
	}
	// The OS installs the snoop mappings — more OS involvement, as §6
	// notes for SHRIMP generally.
	sp.Sleep(120 * sim.Microsecond)
	p.autoBindings = append(p.autoBindings, autoBinding{localVA: localVA, dest: dest, length: n})
	return nil
}

// WriteAuto performs ordinary local stores into an automatically-mapped
// region; the snooping hardware picks the writes off the memory bus and
// sends them to the destination without any explicit send. Sender-side
// cost is just the stores plus a tiny snoop-queue tax; propagation is
// asynchronous at EISA DMA speed.
func (p *Process) WriteAuto(sp *sim.Proc, va mem.VirtAddr, data []byte) error {
	b := p.findBinding(va, len(data))
	if b == nil {
		return fmt.Errorf("shrimp: %w: va %#x not automatically mapped", ErrBadBuffer, va)
	}
	if err := p.AS.WriteBytes(va, data); err != nil {
		return err
	}
	// Snoop-queue occupancy: a fraction of a microsecond per cache line
	// of written data — the "almost free" sender side of automatic
	// update.
	lines := (len(data) + 31) / 32
	sp.Sleep(sim.Time(lines) * sim.Micros(0.05))

	prof := p.Node.sys.Prof
	rec, destOff, err := p.findImport(b.dest, b.length)
	if err != nil {
		return err
	}
	off := destOff + int(va-b.localVA)
	remote := p.Node.sys.Nodes[rec.destNode]
	payload := append([]byte(nil), data...)
	// Propagation runs behind the sender: snoop FIFO -> EISA DMA ->
	// wire -> remote deposit.
	sp.Engine().Go("shrimp:auto", func(ap *sim.Proc) {
		p.Node.DMA.Transfer(ap, len(payload))
		ap.Sleep(prof.WireLatency + prof.RecvCost)
		writeRemote(remote, rec, off, payload)
		remote.Activity.Broadcast()
	})
	return nil
}

func (p *Process) findBinding(va mem.VirtAddr, n int) *autoBinding {
	for i := range p.autoBindings {
		b := &p.autoBindings[i]
		if va >= b.localVA && int(va-b.localVA)+n <= b.length {
			return b
		}
	}
	return nil
}
