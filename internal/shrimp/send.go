package shrimp

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// SendDeliberate performs a deliberate-update transfer of n bytes from the
// sender's virtual address src to the imported destination dest (§6).
//
// Initiation is hardware: the process issues two memory-mapped EISA writes
// per page; the interface's state machine verifies permissions through the
// sender's proxy mappings, translates via the outgoing page table and
// starts the DMA — about 2-3 us, with no software on the interface.
// Multi-page sends re-initiate per page (two writes each), unlike the
// Myrinet LCP's single posted request.
//
// The call is synchronous in the SHRIMP sense: it returns when the last
// page's transfer has been handed to the interface and the send buffer is
// reusable. Delivery proceeds at EISA DMA speed and lands in the remote
// buffer.
func (p *Process) SendDeliberate(sp *sim.Proc, src mem.VirtAddr, dest ProxyAddr, n int) error {
	if n <= 0 {
		return ErrBadBuffer
	}
	if !p.AS.Mapped(src, n) {
		return ErrBadBuffer
	}
	rec, destOff, err := p.findImport(dest, n)
	if err != nil {
		return err
	}
	prof := p.Node.sys.Prof
	remote := p.Node.sys.Nodes[rec.destNode]

	sent := 0
	first := true
	for sent < n {
		// Chunk to the source page boundary, as the hardware does.
		srcAddr := src + mem.VirtAddr(sent)
		chunk := mem.PageSize - srcAddr.Offset()
		if chunk > n-sent {
			chunk = n - sent
		}

		// Two memory-mapped writes initiate the page's transfer.
		p.Node.EISA.Use(sp, 2*prof.EISAWriteCost)
		if first {
			sp.Sleep(prof.InitiateCost)
			first = false
		} else {
			sp.Sleep(prof.PerPageInitiate)
		}

		data, err := p.AS.ReadBytes(srcAddr, chunk)
		if err != nil {
			return err
		}
		off := destOff + sent
		// The EISA DMA engine moves the page; the wire and the remote
		// deposit are pipelined behind it, so the engine occupancy is
		// the bandwidth bottleneck (23 MB/s user limit).
		p.Node.DMA.Transfer(sp, chunk)
		writeRemote(remote, rec, off, data)
		remote.Activity.Broadcast()
		sent += chunk
	}
	// Wire latency and the remote-side deposit trail the last DMA.
	sp.Sleep(prof.WireLatency + prof.RecvCost)
	return nil
}

// writeRemote deposits data into the destination buffer's physical frames.
func writeRemote(remote *Node, rec *importRec, off int, data []byte) {
	for len(data) > 0 {
		page := off / mem.PageSize
		inPage := off % mem.PageSize
		chunk := mem.PageSize - inPage
		if chunk > len(data) {
			chunk = len(data)
		}
		pa := mem.PhysAddr(rec.frames[page])<<mem.PageShift + mem.PhysAddr(inPage)
		if err := remote.Phys.Write(pa, data[:chunk]); err != nil {
			panic(err)
		}
		data = data[chunk:]
		off += chunk
	}
}

// InitiationOverhead reports the host-side cost of initiating a one-page
// deliberate update: the two EISA writes plus the state machine (§6's
// "about 2-3 microseconds" comparison number).
func (s *System) InitiationOverhead() sim.Time {
	return 2*s.Prof.EISAWriteCost + s.Prof.InitiateCost
}

// OneWordLatency measures the one-word deliberate-update latency between
// two processes with an established import (§6: about 7 us).
func (s *System) OneWordLatency(sp *sim.Proc, sender *Process, dest ProxyAddr) (sim.Time, error) {
	src, err := sender.Malloc(mem.PageSize)
	if err != nil {
		return 0, err
	}
	start := sp.Now()
	if err := sender.SendDeliberate(sp, src, dest, 4); err != nil {
		return 0, err
	}
	return sp.Now() - start, nil
}
