// Package analysis is the always-on bottleneck attribution layer: a
// streaming consumer over internal/trace that watches resource spans,
// wait queues and occupancy counters as a model runs, and distills them
// into a ranked top-k bottleneck report.
//
// The analyzer subscribes to the engine's trace collector as a
// trace.Sink, so it sees every event without requiring the ring buffer
// to be armed. It understands three shapes of evidence:
//
//   - busy spans — category "res" spans named "held" emitted by
//     sim.Resource on every grant/release, plus the "dma" transfer and
//     "lcp" control-program spans nested inside them. Overlapping spans
//     on one component are union-counted (a depth counter), so nesting
//     never double-counts busy time.
//   - wait spans — category "res" spans named "wait", opened when a
//     process queues behind a held resource and closed when it is
//     granted. FIFO arbitration in sim.Resource means begin/end pairs
//     match in FIFO order, which is exactly how the analyzer pairs them.
//   - occupancy counters — category "sram" samples (absolute bytes,
//     normalized against hw.Capacities.SRAMBytes) and category "rl"
//     samples (reliable-window credit occupancy, already a fraction).
//
// Components aggregate into resource classes ("recv-dma", "link-tx", …)
// so a 256-node sweep reports "recv DMA, 87% busy" instead of 256
// per-instance rows; the busiest instance is still named. Busy time is
// additionally bucketed over virtual time (fold-doubling buckets, bounded
// memory) to expose peak-window utilization, and category "phase"
// instants split the run into phases for per-phase attribution.
//
// Everything — bucket folding, histogram percentiles, ranking, JSON
// rendering — is integer-deterministic: two runs of the same model
// produce byte-identical reports.
package analysis

import (
	"sort"
	"strings"

	"repro/internal/hw"
	"repro/internal/trace"
)

// Config tunes an Analyzer. The zero value selects sane defaults.
type Config struct {
	// Caps are the capacity constants achieved rates and SRAM occupancy
	// are normalized against. The zero value selects hw.Default().
	Caps hw.Capacities
	// TopK is how many resources the report's ranking highlights
	// (default 3). The report always carries every class; TopK only
	// drives the verdict and table formatting.
	TopK int
	// InitialBucketNS is the starting virtual-time bucket width for
	// peak-window utilization (default 8192 ns). Buckets fold-double
	// whenever the run outgrows MaxBuckets of them, so memory stays
	// bounded for any run length.
	InitialBucketNS int64
	// MaxBuckets bounds the bucket array (default 1024).
	MaxBuckets int
}

func (c Config) withDefaults() Config {
	if c.Caps.SRAMBytes == 0 {
		c.Caps = hw.Default().Capacities()
	}
	if c.TopK <= 0 {
		c.TopK = 3
	}
	if c.InitialBucketNS <= 0 {
		c.InitialBucketNS = 8192
	}
	if c.MaxBuckets <= 0 {
		c.MaxBuckets = 1024
	}
	return c
}

// Analyzer consumes trace events and accumulates per-resource busy,
// wait and occupancy statistics. Attach it with
// Engine.Trace().Subscribe(a); call Finalize once the run is over.
// An Analyzer is single-run: build a fresh one per experiment.
type Analyzer struct {
	cfg     Config
	comps   map[string]*compState // nil entry = classified as untracked
	classes map[string]*classState
	occs    map[string]*occState
	phases  []phaseMark
	buckets bucketSet
	tenants  map[string]*tenantState
	serves   map[string]*tenantState
	replicas map[string]*tenantState
}

// tenantState accumulates one tenant's attribution: lifecycle instant
// counts and the last sample of each usage counter, both category
// "tenant" on a "tenant/<name>" component (emitted by internal/tenant).
type tenantState struct {
	events   map[string]int64
	counters map[string]float64
}

type phaseMark struct {
	name    string
	startNS int64
}

// compState is one tracked component (one resource instance).
type compState struct {
	name  string
	class *classState

	// Busy union counting: depth of open busy spans; a busy segment runs
	// from the 0->1 transition to the 1->0 transition.
	depth     int
	busyStart int64
	busyNS    int64
	phaseBusy []int64 // indexed like Analyzer.phases
	grants    int64

	// Wait pairing (FIFO) and distribution.
	waitOpen  []int64 // begin timestamps, FIFO
	waitHead  int
	waitNS    int64
	waitCount int64
	waitMax   int64
	phaseWait []int64
	hist      *logHist

	// Time-weighted queue depth (number of open waits).
	qDepth   int
	qLastT   int64
	qDepthNS map[int]int64
}

// classState aggregates the components of one resource class.
type classState struct {
	key     string
	label   string
	comps   []*compState
	buckets classBuckets
}

// occState is one occupancy track (SRAM bytes, window credits).
type occState struct {
	comp  string
	class string
	label string
	denom float64 // divisor turning samples into a 0..1 fraction

	lastFrac   float64
	lastT      int64
	weightedNS float64 // integral of frac over time, in frac*ns
	peak       float64
}

// NewAnalyzer returns an analyzer ready to Subscribe.
func NewAnalyzer(cfg Config) *Analyzer {
	cfg = cfg.withDefaults()
	return &Analyzer{
		cfg:     cfg,
		comps:   make(map[string]*compState),
		classes: make(map[string]*classState),
		occs:    make(map[string]*occState),
		phases:  []phaseMark{{name: "run", startNS: 0}},
		buckets: newBucketSet(cfg.InitialBucketNS, cfg.MaxBuckets),
	}
}

// Consume implements trace.Sink. It runs on the simulation goroutine;
// events arrive in virtual-time order.
func (a *Analyzer) Consume(ev trace.Event) {
	switch ev.Ph {
	case trace.PhaseBegin:
		if ev.Category == "res" && ev.Name == "wait" {
			st := a.comp(ev.Component)
			if st == nil {
				return
			}
			st.weighDepth(ev.T)
			st.qDepth++
			st.waitOpen = append(st.waitOpen, ev.T)
			return
		}
		if busySpan(ev.Category) {
			st := a.comp(ev.Component)
			if st == nil {
				return
			}
			if ev.Category == "res" { // name == "held"
				st.grants++
			}
			if st.depth == 0 {
				st.busyStart = ev.T
			}
			st.depth++
		}
	case trace.PhaseEnd:
		if ev.Category == "res" && ev.Name == "wait" {
			st := a.comp(ev.Component)
			if st == nil || st.waitHead >= len(st.waitOpen) {
				return
			}
			begin := st.waitOpen[st.waitHead]
			st.waitHead++
			if st.waitHead == len(st.waitOpen) {
				st.waitOpen = st.waitOpen[:0]
				st.waitHead = 0
			}
			st.weighDepth(ev.T)
			st.qDepth--
			st.recordWait(ev.T-begin, len(a.phases)-1)
			return
		}
		if busySpan(ev.Category) {
			st := a.comp(ev.Component)
			if st == nil || st.depth == 0 {
				return
			}
			st.depth--
			if st.depth == 0 {
				a.flushBusy(st, ev.T)
			}
		}
	case trace.PhaseCounter:
		switch ev.Category {
		case "sram":
			a.occ(ev.Component, "sram").sample(ev.T, ev.Value)
		case "rl":
			if ev.Name == "window_occupancy" {
				a.occ(ev.Component, "rl").sample(ev.T, ev.Value)
			}
		case "tenant":
			a.tenant(ev.Component).counters[ev.Name] = ev.Value
		case "serve":
			a.serve(ev.Component).counters[ev.Name] = ev.Value
		case "replica":
			a.replica(ev.Component).counters[ev.Name] = ev.Value
		}
	case trace.PhaseInstant:
		switch ev.Category {
		case "phase":
			a.beginPhase(ev.Name, ev.T)
		case "tenant":
			a.tenant(ev.Component).events[ev.Name]++
		case "serve":
			a.serve(ev.Component).events[ev.Name]++
		case "replica":
			a.replica(ev.Component).events[ev.Name]++
		}
	}
}

// tenant returns the attribution bucket for a "tenant/<name>" component,
// keyed by the bare tenant name.
func (a *Analyzer) tenant(comp string) *tenantState {
	name := strings.TrimPrefix(comp, "tenant/")
	if a.tenants == nil {
		a.tenants = make(map[string]*tenantState)
	}
	ts, ok := a.tenants[name]
	if !ok {
		ts = &tenantState{events: make(map[string]int64), counters: make(map[string]float64)}
		a.tenants[name] = ts
	}
	return ts
}

// serve returns the attribution bucket for a "serve/<shard>" component,
// keyed by the bare shard name — the serving tier's counterpart of the
// tenant buckets (emitted by internal/serve).
func (a *Analyzer) serve(comp string) *tenantState {
	name := strings.TrimPrefix(comp, "serve/")
	if a.serves == nil {
		a.serves = make(map[string]*tenantState)
	}
	ts, ok := a.serves[name]
	if !ok {
		ts = &tenantState{events: make(map[string]int64), counters: make(map[string]float64)}
		a.serves[name] = ts
	}
	return ts
}

// replica returns the attribution bucket for a "replica/<name>"
// component (names look like "s2r1": shard 2, replica 1), keyed by the
// bare name — emitted by internal/replica's EmitUsage.
func (a *Analyzer) replica(comp string) *tenantState {
	name := strings.TrimPrefix(comp, "replica/")
	if a.replicas == nil {
		a.replicas = make(map[string]*tenantState)
	}
	ts, ok := a.replicas[name]
	if !ok {
		ts = &tenantState{events: make(map[string]int64), counters: make(map[string]float64)}
		a.replicas[name] = ts
	}
	return ts
}

// busySpan reports whether spans of this category count toward a
// component's busy time. "res" held spans are the primary signal; "dma"
// transfer and "lcp" control-program spans nest inside or stand alone and
// are union-counted with them.
func busySpan(cat string) bool {
	return cat == "res" || cat == "dma" || cat == "lcp"
}

// flushBusy closes the open busy segment of st at now, crediting the
// current phase and the peak-window buckets.
func (a *Analyzer) flushBusy(st *compState, now int64) {
	d := now - st.busyStart
	if d <= 0 {
		return
	}
	st.busyNS += d
	pi := len(a.phases) - 1
	for len(st.phaseBusy) <= pi {
		st.phaseBusy = append(st.phaseBusy, 0)
	}
	st.phaseBusy[pi] += d
	st.class.addBusy(&a.buckets, st.busyStart, now)
}

// beginPhase splits the run at now: open busy segments are flushed into
// the ending phase and restarted, so attribution is exact at the boundary.
func (a *Analyzer) beginPhase(name string, now int64) {
	for _, st := range a.comps {
		if st != nil && st.depth > 0 {
			a.flushBusy(st, now)
			st.busyStart = now
		}
	}
	a.phases = append(a.phases, phaseMark{name: name, startNS: now})
}

func (st *compState) recordWait(d int64, phase int) {
	if d < 0 {
		d = 0
	}
	st.waitNS += d
	st.waitCount++
	if d > st.waitMax {
		st.waitMax = d
	}
	for len(st.phaseWait) <= phase {
		st.phaseWait = append(st.phaseWait, 0)
	}
	st.phaseWait[phase] += d
	if st.hist == nil {
		st.hist = &logHist{}
	}
	st.hist.add(d)
}

// weighDepth accumulates time-at-current-queue-depth before a transition.
func (st *compState) weighDepth(now int64) {
	if st.qDepthNS == nil {
		st.qDepthNS = make(map[int]int64)
	}
	st.qDepthNS[st.qDepth] += now - st.qLastT
	st.qLastT = now
}

func (o *occState) sample(now int64, v float64) {
	o.weightedNS += o.lastFrac * float64(now-o.lastT)
	o.lastT = now
	f := v
	if o.denom > 0 {
		f = v / o.denom
	}
	o.lastFrac = f
	if f > o.peak {
		o.peak = f
	}
}

// comp returns the state for a component, classifying it on first sight.
// Unclassified components get a nil entry so the string work happens once.
func (a *Analyzer) comp(name string) *compState {
	st, ok := a.comps[name]
	if ok {
		return st
	}
	key, label := classify(name)
	if key == "" {
		a.comps[name] = nil
		return nil
	}
	cl, ok := a.classes[key]
	if !ok {
		cl = &classState{key: key, label: label}
		a.classes[key] = cl
	}
	st = &compState{name: name, class: cl}
	cl.comps = append(cl.comps, st)
	a.comps[name] = st
	return st
}

func (a *Analyzer) occ(comp, cat string) *occState {
	k := cat + "|" + comp
	o, ok := a.occs[k]
	if ok {
		return o
	}
	switch cat {
	case "sram":
		o = &occState{comp: comp, class: "sram", label: "LANai SRAM",
			denom: float64(a.cfg.Caps.SRAMBytes)}
	case "rl":
		o = &occState{comp: comp, class: "rl-window", label: "reliable window credits"}
	}
	a.occs[k] = o
	return o
}

// classify maps a trace component name to its resource class. An empty
// key means the component is not a contended resource the analyzer
// tracks.
func classify(comp string) (key, label string) {
	switch {
	case strings.HasPrefix(comp, "bus:"):
		rest := comp[len("bus:"):]
		if i := strings.IndexByte(rest, ':'); i >= 0 {
			rest = rest[:i]
		}
		return "bus-" + rest, "host " + strings.ToUpper(rest) + " bus"
	case strings.HasPrefix(comp, "dma:"):
		switch comp[strings.LastIndexByte(comp, ':')+1:] {
		case "host":
			return "host-dma", "host DMA (host<->SRAM)"
		case "netsend":
			return "send-dma", "send DMA (SRAM->wire)"
		case "netrecv":
			return "recv-dma", "recv DMA (wire->SRAM)"
		default:
			return "other-dma", "other DMA"
		}
	case strings.HasPrefix(comp, "myri:") && strings.HasSuffix(comp, ":tx"):
		return "link-tx", "link wire (injection)"
	case strings.HasSuffix(comp, "/lcp"):
		return "lcp", "LANai control program"
	}
	return "", ""
}

// capacityBps returns the peak byte rate for a class, 0 when rate
// normalization does not apply.
func (a *Analyzer) capacityBps(class string) float64 {
	switch class {
	case "host-dma":
		return a.cfg.Caps.HostToLANaiBytesPerSec
	case "send-dma":
		return a.cfg.Caps.NetSendBytesPerSec
	case "recv-dma":
		return a.cfg.Caps.NetRecvBytesPerSec
	case "link-tx":
		return a.cfg.Caps.LinkBytesPerSec
	}
	return 0
}

// classBytes sums the snapshot byte counters that feed a class's achieved
// rate: dma:<name>/bytes for the DMA classes, nic<id>/bytes_injected for
// link injection.
func classBytes(cl *classState, snap trace.Snapshot) int64 {
	var total int64
	for _, st := range cl.comps {
		var name string
		switch {
		case strings.HasPrefix(st.name, "dma:"):
			name = st.name + "/bytes"
		case strings.HasPrefix(st.name, "myri:nic"):
			id := strings.TrimSuffix(strings.TrimPrefix(st.name, "myri:"), ":tx")
			name = id + "/bytes_injected"
		default:
			continue
		}
		if v, ok := snap.Counter(name); ok {
			total += v
		}
	}
	return total
}

// Finalize closes all open state at virtual time now and builds the
// report. snap supplies the byte counters achieved rates are computed
// from; pass the engine's MetricsSnapshot. The analyzer must not consume
// further events afterwards.
func (a *Analyzer) Finalize(now int64, snap trace.Snapshot) *Report {
	// Close open busy segments, still-pending waits and occupancy tails.
	lastPhase := len(a.phases) - 1
	names := make([]string, 0, len(a.comps))
	for name, st := range a.comps {
		if st != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		st := a.comps[name]
		if st.depth > 0 {
			a.flushBusy(st, now)
			st.depth = 0
		}
		for st.waitHead < len(st.waitOpen) {
			begin := st.waitOpen[st.waitHead]
			st.waitHead++
			st.weighDepth(now)
			st.qDepth--
			st.recordWait(now-begin, lastPhase)
		}
		if st.qDepthNS != nil {
			st.weighDepth(now)
		}
	}

	rep := &Report{
		WindowNS: now,
		BucketNS: a.buckets.widthNS,
		TopK:     a.cfg.TopK,
	}
	for i, ph := range a.phases {
		end := now
		if i+1 < len(a.phases) {
			end = a.phases[i+1].startNS
		}
		rep.Phases = append(rep.Phases, PhaseSpan{Name: ph.name, StartNS: ph.startNS, EndNS: end})
	}

	classKeys := make([]string, 0, len(a.classes))
	for k := range a.classes {
		classKeys = append(classKeys, k)
	}
	sort.Strings(classKeys)
	for _, k := range classKeys {
		cl := a.classes[k]
		sort.Slice(cl.comps, func(i, j int) bool { return cl.comps[i].name < cl.comps[j].name })
		rs := ResourceStat{Class: cl.key, Label: cl.label, Instances: len(cl.comps)}
		merged := &logHist{}
		depthNS := make(map[int]int64)
		var sumBusy int64
		for _, st := range cl.comps {
			sumBusy += st.busyNS
			if st.busyNS > rs.busiestNS || rs.Busiest == "" {
				rs.busiestNS = st.busyNS
				rs.Busiest = st.name
			}
			rs.Grants += st.grants
			rs.WaitCount += st.waitCount
			rs.WaitTotalNS += st.waitNS
			if st.waitMax > rs.WaitMaxNS {
				rs.WaitMaxNS = st.waitMax
			}
			if st.hist != nil {
				merged.merge(st.hist)
			}
			for d, ns := range st.qDepthNS {
				depthNS[d] += ns
			}
		}
		if now > 0 {
			rs.BusyFrac = frac(rs.busiestNS, now)
			rs.MeanBusyFrac = frac(sumBusy, now*int64(len(cl.comps)))
		}
		// Histogram bins report their upper bound; clamp to the exact
		// observed maximum so p50/p99 never exceed it.
		rs.WaitP50NS = merged.percentile(50)
		rs.WaitP99NS = merged.percentile(99)
		if rs.WaitP50NS > rs.WaitMaxNS {
			rs.WaitP50NS = rs.WaitMaxNS
		}
		if rs.WaitP99NS > rs.WaitMaxNS {
			rs.WaitP99NS = rs.WaitMaxNS
		}
		rs.QueueP50, rs.QueueMax = depthPercentiles(depthNS)
		rs.PeakBucketFrac = a.buckets.peakFrac(cl, now)
		if capBps := a.capacityBps(cl.key); capBps > 0 && now > 0 {
			bytes := classBytes(cl, snap)
			rs.RateFrac = float64(bytes) / (float64(now) / 1e9) / (capBps * float64(len(cl.comps)))
		}
		for pi, ph := range rep.Phases {
			dur := ph.EndNS - ph.StartNS
			pr := PhaseResource{Phase: ph.Name}
			for _, st := range cl.comps {
				if pi < len(st.phaseBusy) && dur > 0 {
					if f := frac(st.phaseBusy[pi], dur); f > pr.BusyFrac {
						pr.BusyFrac = f
					}
				}
				if pi < len(st.phaseWait) {
					pr.WaitNS += st.phaseWait[pi]
				}
			}
			rs.PerPhase = append(rs.PerPhase, pr)
		}
		rep.Resources = append(rep.Resources, rs)
	}
	// Rank: busiest instance first; wait attribution breaks ties.
	sort.Slice(rep.Resources, func(i, j int) bool {
		ri, rj := rep.Resources[i], rep.Resources[j]
		if ri.BusyFrac != rj.BusyFrac {
			return ri.BusyFrac > rj.BusyFrac
		}
		if ri.WaitTotalNS != rj.WaitTotalNS {
			return ri.WaitTotalNS > rj.WaitTotalNS
		}
		return ri.Class < rj.Class
	})

	occKeys := make([]string, 0, len(a.occs))
	for k := range a.occs {
		occKeys = append(occKeys, k)
	}
	sort.Strings(occKeys)
	byClass := make(map[string]*OccupancyStat)
	var occOrder []string
	for _, k := range occKeys {
		o := a.occs[k]
		o.weightedNS += o.lastFrac * float64(now-o.lastT)
		os, ok := byClass[o.class]
		if !ok {
			os = &OccupancyStat{Class: o.class, Label: o.label}
			byClass[o.class] = os
			occOrder = append(occOrder, o.class)
		}
		os.Instances++
		mean := 0.0
		if now > 0 {
			mean = o.weightedNS / float64(now)
		}
		os.meanSum += mean
		if o.peak > os.PeakFrac || os.Busiest == "" {
			os.PeakFrac = o.peak
			os.Busiest = o.comp
		}
	}
	for _, c := range occOrder {
		os := byClass[c]
		os.MeanFrac = os.meanSum / float64(os.Instances)
		rep.Occupancies = append(rep.Occupancies, *os)
	}

	rep.Tenants = collectAttr(a.tenants)
	rep.Serve = collectAttr(a.serves)
	rep.Replica = collectAttr(a.replicas)

	rep.Verdict = rep.verdict()
	return rep
}

// collectAttr flattens an attribution map (tenant or serve buckets) into
// name-sorted stats with name-sorted events and counters.
func collectAttr(m map[string]*tenantState) []TenantStat {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []TenantStat
	for _, name := range names {
		ts := m[name]
		st := TenantStat{Name: name}
		evNames := make([]string, 0, len(ts.events))
		for k := range ts.events {
			evNames = append(evNames, k)
		}
		sort.Strings(evNames)
		for _, k := range evNames {
			st.Events = append(st.Events, TenantEvent{Name: k, Count: ts.events[k]})
		}
		ctrNames := make([]string, 0, len(ts.counters))
		for k := range ts.counters {
			ctrNames = append(ctrNames, k)
		}
		sort.Strings(ctrNames)
		for _, k := range ctrNames {
			st.Counters = append(st.Counters, TenantCounter{Name: k, Value: ts.counters[k]})
		}
		out = append(out, st)
	}
	return out
}

func frac(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
