package analysis

import (
	"math/bits"
	"sort"
)

// logHist is a log-linear histogram of nanosecond durations: exact bins
// for 0..7 ns, then 8 sub-bins per power of two (3 mantissa bits), giving
// a worst-case relative error of 12.5% on reported percentiles. All math
// is integer, so percentiles are deterministic.
type logHist struct {
	bins  [8 + 8*61]int64
	total int64
}

func histBin(ns int64) int {
	if ns < 8 {
		if ns < 0 {
			ns = 0
		}
		return int(ns)
	}
	o := bits.Len64(uint64(ns)) - 1     // octave, >= 3
	sub := (ns >> uint(o-3)) & 7        // next 3 mantissa bits
	return 8 + (o-3)*8 + int(sub)
}

// histUpper returns the largest duration a bin covers, the value
// percentile lookups report.
func histUpper(bin int) int64 {
	if bin < 8 {
		return int64(bin)
	}
	bin -= 8
	o := bin/8 + 3
	sub := int64(bin % 8)
	return (8+sub+1)<<uint(o-3) - 1
}

func (h *logHist) add(ns int64) {
	h.bins[histBin(ns)]++
	h.total++
}

func (h *logHist) merge(o *logHist) {
	for i, v := range o.bins {
		h.bins[i] += v
	}
	h.total += o.total
}

// percentile returns the p-th percentile (p in 1..100) as the upper bound
// of the bin the rank lands in; 0 when the histogram is empty.
func (h *logHist) percentile(p int) int64 {
	if h.total == 0 {
		return 0
	}
	rank := (h.total*int64(p) + 99) / 100 // ceil
	var cum int64
	for i, v := range h.bins {
		cum += v
		if cum >= rank {
			return histUpper(i)
		}
	}
	return histUpper(len(h.bins) - 1)
}

// depthPercentiles computes the time-weighted median and maximum queue
// depth from a depth -> nanoseconds-at-depth map.
func depthPercentiles(depthNS map[int]int64) (p50, max int) {
	if len(depthNS) == 0 {
		return 0, 0
	}
	depths := make([]int, 0, len(depthNS))
	var total int64
	for d, ns := range depthNS {
		if ns <= 0 {
			continue
		}
		depths = append(depths, d)
		total += ns
		if d > max {
			max = d
		}
	}
	if total == 0 {
		return 0, max
	}
	sort.Ints(depths)
	half := (total + 1) / 2
	var cum int64
	for _, d := range depths {
		cum += depthNS[d]
		if cum >= half {
			return d, max
		}
	}
	return depths[len(depths)-1], max
}

// bucketSet holds per-class busy time in fixed-width virtual-time
// buckets. When a span lands past the last bucket, every class's buckets
// fold pairwise and the width doubles — memory stays bounded at
// maxBuckets entries per class for any run length, and folding is
// deterministic.
type bucketSet struct {
	widthNS    int64
	maxBuckets int
	classes    []*classState // every class that ever allocated buckets
}

func newBucketSet(widthNS int64, maxBuckets int) bucketSet {
	return bucketSet{widthNS: widthNS, maxBuckets: maxBuckets}
}

// classBuckets is stored on classState lazily.
type classBuckets struct {
	busyNS []int64
}

func (b *bucketSet) fold() {
	b.widthNS *= 2
	for _, cl := range b.classes {
		buf := cl.buckets.busyNS
		n := (len(buf) + 1) / 2
		for i := 0; i < n; i++ {
			v := buf[2*i]
			if 2*i+1 < len(buf) {
				v += buf[2*i+1]
			}
			buf[i] = v
		}
		cl.buckets.busyNS = buf[:n]
	}
}

// addBusy credits busy time over [start, end) to cl's buckets, splitting
// across bucket boundaries.
func (cl *classState) addBusy(b *bucketSet, start, end int64) {
	if end <= start {
		return
	}
	if cl.buckets.busyNS == nil {
		b.classes = append(b.classes, cl)
	}
	for (end-1)/b.widthNS >= int64(b.maxBuckets) {
		b.fold()
	}
	for t := start; t < end; {
		idx := t / b.widthNS
		bEnd := (idx + 1) * b.widthNS
		if bEnd > end {
			bEnd = end
		}
		for int64(len(cl.buckets.busyNS)) <= idx {
			cl.buckets.busyNS = append(cl.buckets.busyNS, 0)
		}
		cl.buckets.busyNS[idx] += bEnd - t
		t = bEnd
	}
}

// peakFrac returns the largest per-bucket busy fraction of a class,
// averaged over its instances (busyNS / (width * instances)). The final,
// possibly partial bucket is clipped to the run window so a short tail
// cannot dilute the peak.
func (b *bucketSet) peakFrac(cl *classState, now int64) float64 {
	if len(cl.buckets.busyNS) == 0 || len(cl.comps) == 0 {
		return 0
	}
	inst := int64(len(cl.comps))
	var peak float64
	for i, busy := range cl.buckets.busyNS {
		width := b.widthNS
		if rem := now - int64(i)*b.widthNS; rem < width {
			if rem <= 0 {
				break
			}
			width = rem
		}
		if f := float64(busy) / float64(width*inst); f > peak {
			peak = f
		}
	}
	if peak > 1 {
		peak = 1
	}
	return peak
}
