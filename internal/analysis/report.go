package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Report is the finalized bottleneck analysis of one run. Resources are
// ranked most-contended first (busiest instance's busy fraction, ties
// broken by total wait time, then class name); everything in it is
// deterministic for a deterministic run.
type Report struct {
	// WindowNS is the virtual-time window analyzed, [0, WindowNS].
	WindowNS int64
	// BucketNS is the final peak-window bucket width after folding.
	BucketNS int64
	// TopK is how many resources the verdict and table formatting
	// highlight.
	TopK int
	// Phases are the experiment phases, in order. There is always at
	// least the implicit "run" phase.
	Phases []PhaseSpan
	// Resources holds one entry per resource class, ranked.
	Resources []ResourceStat
	// Occupancies holds the capacity-occupancy tracks (SRAM, window
	// credits), sorted by class.
	Occupancies []OccupancyStat
	// Tenants holds per-tenant attribution (lifecycle events and usage
	// counters), sorted by name. Empty — and absent from the JSON — for
	// runs without a tenant manager.
	Tenants []TenantStat
	// Serve holds per-shard serving-tier attribution (admission and
	// outcome counters), sorted by shard name. Empty — and absent from
	// the JSON — for runs without a serving tier.
	Serve []TenantStat
	// Replica holds per-replica attribution for the replicated serving
	// tier (routing, admission, and replication counters), sorted by
	// "s<shard>r<replica>" name. Empty — and absent from the JSON — for
	// runs without replication.
	Replica []TenantStat
	// Verdict is the one-paragraph textual conclusion.
	Verdict string
}

// TenantStat is one tenant's attribution: how its lifecycle unfolded and
// the last sample of each usage counter it published.
type TenantStat struct {
	Name     string
	Events   []TenantEvent
	Counters []TenantCounter
}

// TenantEvent counts one lifecycle instant ("admitted", "killed", ...).
type TenantEvent struct {
	Name  string
	Count int64
}

// TenantCounter is the final sample of one usage counter
// ("pinned_frames", "link_throttled_ns", ...).
type TenantCounter struct {
	Name  string
	Value float64
}

// PhaseSpan is one experiment phase over [StartNS, EndNS).
type PhaseSpan struct {
	Name    string
	StartNS int64
	EndNS   int64
}

// ResourceStat aggregates one resource class over the run.
type ResourceStat struct {
	Class     string // stable key, e.g. "recv-dma"
	Label     string // human label, e.g. "recv DMA (wire->SRAM)"
	Instances int
	// Busiest is the instance with the largest busy time; BusyFrac is
	// its busy fraction of the window — the class's ranking key.
	Busiest   string
	BusyFrac  float64
	busiestNS int64
	// MeanBusyFrac averages the busy fraction over all instances.
	MeanBusyFrac float64
	// PeakBucketFrac is the largest instance-averaged busy fraction of
	// any virtual-time bucket — the burstiness signal.
	PeakBucketFrac float64
	// Grants counts resource grants across instances.
	Grants int64
	// Wait attribution: time processes spent queued for this class.
	WaitCount   int64
	WaitTotalNS int64
	WaitP50NS   int64
	WaitP99NS   int64
	WaitMaxNS   int64
	// Time-weighted queue depth (median and maximum observed).
	QueueP50 int
	QueueMax int
	// RateFrac is achieved bytes over the class's aggregate capacity
	// (hw.Capacities), 0 when rate normalization does not apply.
	RateFrac float64
	// PerPhase attributes busy fraction (busiest instance) and total
	// wait time to each experiment phase.
	PerPhase []PhaseResource
}

// PhaseResource is one class's attribution within one phase.
type PhaseResource struct {
	Phase    string
	BusyFrac float64
	WaitNS   int64
}

// OccupancyStat is one capacity-occupancy track, normalized to 0..1.
type OccupancyStat struct {
	Class     string
	Label     string
	Instances int
	// MeanFrac is the time-weighted mean occupancy averaged over
	// instances; PeakFrac is the largest sample anywhere; Busiest names
	// the instance that hit the peak.
	MeanFrac float64
	PeakFrac float64
	Busiest  string
	meanSum  float64
}

// Top returns the k top-ranked resources (k<=0 means the report's TopK).
func (r *Report) Top(k int) []ResourceStat {
	if k <= 0 {
		k = r.TopK
	}
	if k > len(r.Resources) {
		k = len(r.Resources)
	}
	return r.Resources[:k]
}

// verdict builds the one-paragraph conclusion.
func (r *Report) verdict() string {
	if len(r.Resources) == 0 {
		return "no contended resource activity observed in the analysis window."
	}
	top := r.Resources[0]
	var b strings.Builder
	fmt.Fprintf(&b, "limiting resource: %s, %s busy (busiest instance %s of %d), p99 queue wait %s, peak-window utilization %s",
		top.Label, pct(top.BusyFrac), top.Busiest, top.Instances,
		us(top.WaitP99NS), pct(top.PeakBucketFrac))
	if top.RateFrac > 0 {
		fmt.Fprintf(&b, ", achieved %s of aggregate capacity", pct(top.RateFrac))
	}
	// Wait-attribution leader, when it is not already the busy leader.
	waitLeader := top
	for _, rs := range r.Resources {
		if rs.WaitTotalNS > waitLeader.WaitTotalNS {
			waitLeader = rs
		}
	}
	if waitLeader.Class != top.Class && waitLeader.WaitTotalNS > 0 {
		fmt.Fprintf(&b, "; wait-attribution leader: %s with %s total queue wait (%d waits, max %s)",
			waitLeader.Label, us(waitLeader.WaitTotalNS), waitLeader.WaitCount, us(waitLeader.WaitMaxNS))
	}
	for _, o := range r.Occupancies {
		if o.PeakFrac >= 0.5 {
			fmt.Fprintf(&b, "; %s peaked at %s of capacity", o.Label, pct(o.PeakFrac))
		}
	}
	b.WriteByte('.')
	return b.String()
}

// pct formats a fraction as a deterministic percentage with one decimal.
func pct(f float64) string {
	return strconv.FormatFloat(f*100, 'f', 1, 64) + "%"
}

// us formats nanoseconds as microseconds with one decimal.
func us(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1000, 'f', 1, 64) + " us"
}

// WriteJSON writes the report as deterministic JSON with the given
// indentation prefix applied to every line. Numbers use the same stable
// formatting as the trace exporters, so a double run of a deterministic
// experiment produces byte-identical output.
func (r *Report) WriteJSON(w io.Writer, indent string) error {
	bw := bufio.NewWriter(w)
	p := func(depth int, format string, args ...interface{}) {
		bw.WriteString(indent)
		for i := 0; i < depth; i++ {
			bw.WriteString("  ")
		}
		fmt.Fprintf(bw, format, args...)
	}
	p(0, "{\n")
	p(1, "\"window_ns\": %d,\n", r.WindowNS)
	p(1, "\"bucket_ns\": %d,\n", r.BucketNS)
	p(1, "\"top_k\": %d,\n", r.TopK)
	p(1, "\"verdict\": %s,\n", jstr(r.Verdict))
	p(1, "\"phases\": [")
	for i, ph := range r.Phases {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('\n')
		p(2, "{\"name\": %s, \"start_ns\": %d, \"end_ns\": %d}", jstr(ph.Name), ph.StartNS, ph.EndNS)
	}
	bw.WriteByte('\n')
	p(1, "],\n")
	p(1, "\"resources\": [")
	for i, rs := range r.Resources {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('\n')
		p(2, "{\n")
		p(3, "\"rank\": %d,\n", i+1)
		p(3, "\"class\": %s,\n", jstr(rs.Class))
		p(3, "\"label\": %s,\n", jstr(rs.Label))
		p(3, "\"instances\": %d,\n", rs.Instances)
		p(3, "\"busiest\": %s,\n", jstr(rs.Busiest))
		p(3, "\"busy_frac\": %s,\n", jnum(rs.BusyFrac))
		p(3, "\"mean_busy_frac\": %s,\n", jnum(rs.MeanBusyFrac))
		p(3, "\"peak_bucket_frac\": %s,\n", jnum(rs.PeakBucketFrac))
		p(3, "\"rate_frac\": %s,\n", jnum(rs.RateFrac))
		p(3, "\"grants\": %d,\n", rs.Grants)
		p(3, "\"wait\": {\"count\": %d, \"total_ns\": %d, \"p50_ns\": %d, \"p99_ns\": %d, \"max_ns\": %d},\n",
			rs.WaitCount, rs.WaitTotalNS, rs.WaitP50NS, rs.WaitP99NS, rs.WaitMaxNS)
		p(3, "\"queue_depth\": {\"p50\": %d, \"max\": %d},\n", rs.QueueP50, rs.QueueMax)
		p(3, "\"phases\": [")
		for j, pr := range rs.PerPhase {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteByte('\n')
			p(4, "{\"phase\": %s, \"busy_frac\": %s, \"wait_ns\": %d}",
				jstr(pr.Phase), jnum(pr.BusyFrac), pr.WaitNS)
		}
		bw.WriteByte('\n')
		p(3, "]\n")
		p(2, "}")
	}
	bw.WriteByte('\n')
	p(1, "],\n")
	p(1, "\"occupancy\": [")
	for i, o := range r.Occupancies {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('\n')
		p(2, "{\"class\": %s, \"label\": %s, \"instances\": %d, \"mean_frac\": %s, \"peak_frac\": %s, \"busiest\": %s}",
			jstr(o.Class), jstr(o.Label), o.Instances, jnum(o.MeanFrac), jnum(o.PeakFrac), jstr(o.Busiest))
	}
	bw.WriteByte('\n')
	p(1, "]")
	// The tenants and serve sections only exist for runs that produced
	// them, so reports without those subsystems stay byte-identical to
	// before the sections existed.
	writeAttr := func(title string, stats []TenantStat) {
		bw.WriteString(",\n")
		p(1, "%q: [", title)
		for i, t := range stats {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteByte('\n')
			p(2, "{\n")
			p(3, "\"name\": %s,\n", jstr(t.Name))
			p(3, "\"events\": {")
			for j, e := range t.Events {
				if j > 0 {
					bw.WriteString(", ")
				}
				fmt.Fprintf(bw, "%s: %d", jstr(e.Name), e.Count)
			}
			bw.WriteString("},\n")
			p(3, "\"counters\": {")
			for j, c := range t.Counters {
				if j > 0 {
					bw.WriteString(", ")
				}
				fmt.Fprintf(bw, "%s: %s", jstr(c.Name), jnum(c.Value))
			}
			bw.WriteString("}\n")
			p(2, "}")
		}
		bw.WriteByte('\n')
		p(1, "]")
	}
	if len(r.Tenants) > 0 {
		writeAttr("tenants", r.Tenants)
	}
	if len(r.Serve) > 0 {
		writeAttr("serve", r.Serve)
	}
	if len(r.Replica) > 0 {
		writeAttr("replica", r.Replica)
	}
	bw.WriteByte('\n')
	p(0, "}")
	return bw.Flush()
}

// jstr escapes s as a JSON string literal.
func jstr(s string) string {
	b, _ := json.Marshal(s) // marshaling a string cannot fail
	return string(b)
}

// jnum formats a float compactly and deterministically, matching the
// trace exporters' convention.
func jnum(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', 9, 64)
}
