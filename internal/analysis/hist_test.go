package analysis

import "testing"

// TestHistBinUpperConsistent checks the bin geometry: every duration must
// land in a bin whose reported upper bound is >= the duration and within
// 12.5% of it (the log-linear resolution contract).
func TestHistBinUpperConsistent(t *testing.T) {
	for _, ns := range []int64{0, 1, 7, 8, 9, 15, 16, 100, 103, 104, 1000, 1 << 20, 1<<40 + 12345} {
		bin := histBin(ns)
		up := histUpper(bin)
		if up < ns {
			t.Errorf("histUpper(histBin(%d)) = %d, below the value", ns, up)
		}
		if ns >= 8 && float64(up) > float64(ns)*1.125 {
			t.Errorf("histUpper(histBin(%d)) = %d, more than 12.5%% above", ns, up)
		}
	}
	if got := histBin(-5); got != 0 {
		t.Errorf("negative duration binned at %d, want 0", got)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var h logHist
	if got := h.percentile(50); got != 0 {
		t.Errorf("empty histogram p50 = %d, want 0", got)
	}
	h.add(5)
	for _, p := range []int{1, 50, 100} {
		if got := h.percentile(p); got != 5 {
			t.Errorf("single-sample p%d = %d, want 5", p, got)
		}
	}
	// 99 fast waits and one slow one: p50 and even p99 (rank 99 of 100)
	// track the fast cluster; only p100 reaches the outlier's bin.
	h = logHist{}
	for i := 0; i < 99; i++ {
		h.add(100)
	}
	h.add(10000)
	if got := h.percentile(50); got < 100 || got > 112 {
		t.Errorf("p50 = %d, want 100 within 12.5%%", got)
	}
	if got := h.percentile(99); got < 100 || got > 112 {
		t.Errorf("p99 = %d, want the fast cluster (rank 99 of 100)", got)
	}
	if got := h.percentile(100); got < 10000 || got > 11250 {
		t.Errorf("p100 = %d, want 10000 within 12.5%%", got)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b logHist
	a.add(10)
	b.add(10)
	b.add(1000)
	a.merge(&b)
	if a.total != 3 {
		t.Fatalf("merged total = %d, want 3", a.total)
	}
	if got := a.percentile(100); got < 1000 {
		t.Errorf("merged p100 = %d, want >= 1000", got)
	}
}

func TestDepthPercentiles(t *testing.T) {
	if p50, max := depthPercentiles(nil); p50 != 0 || max != 0 {
		t.Errorf("empty depth map = (%d, %d), want (0, 0)", p50, max)
	}
	// 60% of time at depth 0, 30% at depth 2, 10% at depth 7.
	p50, max := depthPercentiles(map[int]int64{0: 600, 2: 300, 7: 100})
	if p50 != 0 || max != 7 {
		t.Errorf("depth percentiles = (%d, %d), want (0, 7)", p50, max)
	}
	p50, _ = depthPercentiles(map[int]int64{0: 100, 3: 900})
	if p50 != 3 {
		t.Errorf("depth p50 = %d, want 3", p50)
	}
}

// newTestClass builds a classState with n synthetic instances, enough for
// bucket accounting (which only reads len(comps)).
func newTestClass(n int) *classState {
	cl := &classState{key: "test", label: "test"}
	for i := 0; i < n; i++ {
		cl.comps = append(cl.comps, &compState{class: cl})
	}
	return cl
}

func TestBucketsSpanCrossingBoundary(t *testing.T) {
	b := newBucketSet(100, 1024)
	cl := newTestClass(1)
	// 40 ns in bucket 0, the whole of bucket 1, 10 ns in bucket 2.
	cl.addBusy(&b, 60, 210)
	want := []int64{40, 100, 10}
	if len(cl.buckets.busyNS) != 3 {
		t.Fatalf("bucket count = %d, want 3", len(cl.buckets.busyNS))
	}
	for i, w := range want {
		if cl.buckets.busyNS[i] != w {
			t.Errorf("bucket %d = %d ns, want %d", i, cl.buckets.busyNS[i], w)
		}
	}
	if got := b.peakFrac(cl, 300); got != 1 {
		t.Errorf("peakFrac = %v, want 1 (bucket 1 fully busy)", got)
	}
}

func TestBucketsZeroDurationSpan(t *testing.T) {
	b := newBucketSet(100, 1024)
	cl := newTestClass(1)
	cl.addBusy(&b, 50, 50)
	cl.addBusy(&b, 80, 70) // end < start: ignored, not negative credit
	if len(cl.buckets.busyNS) != 0 {
		t.Errorf("zero/negative spans allocated %d buckets, want none", len(cl.buckets.busyNS))
	}
	if got := b.peakFrac(cl, 100); got != 0 {
		t.Errorf("peakFrac of empty buckets = %v, want 0", got)
	}
}

func TestBucketsFoldDoubling(t *testing.T) {
	b := newBucketSet(100, 4) // fold as soon as an index reaches 4
	cl := newTestClass(1)
	cl.addBusy(&b, 0, 100)   // bucket 0 full
	cl.addBusy(&b, 250, 300) // bucket 2 half
	if b.widthNS != 100 {
		t.Fatalf("width folded early: %d", b.widthNS)
	}
	// Busy time at t=450 forces index 4: one fold to width 200.
	cl.addBusy(&b, 400, 450)
	if b.widthNS != 200 {
		t.Fatalf("width = %d after overflow, want 200", b.widthNS)
	}
	var total int64
	for _, v := range cl.buckets.busyNS {
		total += v
	}
	if total != 200 {
		t.Errorf("folding lost busy time: total = %d ns, want 200", total)
	}
	// Fold is pairwise: old buckets (100, 0, 50, 0) -> (100, 50), then
	// the new 50 ns lands in new-bucket 2.
	want := []int64{100, 50, 50}
	if len(cl.buckets.busyNS) != len(want) {
		t.Fatalf("buckets after fold = %v", cl.buckets.busyNS)
	}
	for i, w := range want {
		if cl.buckets.busyNS[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, cl.buckets.busyNS[i], w)
		}
	}
}

// TestPeakFracClipsPartialTail: a short final bucket must not dilute the
// peak, and a busy final bucket must not inflate it past 1.
func TestPeakFracClipsPartialTail(t *testing.T) {
	b := newBucketSet(100, 1024)
	cl := newTestClass(2) // two instances: denominators double
	cl.addBusy(&b, 0, 50)
	cl.addBusy(&b, 100, 120)
	cl.addBusy(&b, 100, 120) // both instances busy in the 20 ns tail
	// Window ends at 120: bucket 1 is 20 ns wide, 40 ns busy across 2
	// instances -> exactly 1.0 after clipping.
	if got := b.peakFrac(cl, 120); got != 1 {
		t.Errorf("peakFrac = %v, want 1 (clipped tail, 2 instances)", got)
	}
}
