package analysis_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// feed replays a canned event stream into a fresh analyzer and finalizes
// it at now.
func feed(t *testing.T, evs []trace.Event, now int64, snap trace.Snapshot) *analysis.Report {
	t.Helper()
	a := analysis.NewAnalyzer(analysis.Config{})
	for _, ev := range evs {
		a.Consume(ev)
	}
	return a.Finalize(now, snap)
}

func begin(tm int64, comp, cat, name string) trace.Event {
	return trace.Event{T: tm, Ph: trace.PhaseBegin, Component: comp, Category: cat, Name: name}
}

func end(tm int64, comp, cat, name string) trace.Event {
	return trace.Event{T: tm, Ph: trace.PhaseEnd, Component: comp, Category: cat, Name: name}
}

func findClass(t *testing.T, rep *analysis.Report, class string) analysis.ResourceStat {
	t.Helper()
	for _, rs := range rep.Resources {
		if rs.Class == class {
			return rs
		}
	}
	t.Fatalf("report has no class %q (have %d resources)", class, len(rep.Resources))
	return analysis.ResourceStat{}
}

func TestEmptyRunProducesValidReport(t *testing.T) {
	rep := feed(t, nil, 1000, trace.Snapshot{})
	if len(rep.Resources) != 0 || len(rep.Occupancies) != 0 {
		t.Fatalf("empty run produced %d resources, %d occupancies", len(rep.Resources), len(rep.Occupancies))
	}
	if !strings.Contains(rep.Verdict, "no contended resource activity") {
		t.Errorf("empty-run verdict = %q", rep.Verdict)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "run" {
		t.Errorf("empty run phases = %+v, want the implicit run phase", rep.Phases)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf, ""); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "{") || !strings.HasSuffix(buf.String(), "}") {
		t.Errorf("empty-run JSON malformed: %q", buf.String())
	}
}

func TestZeroDurationSpans(t *testing.T) {
	evs := []trace.Event{
		begin(100, "dma:lanai0:host", "res", "held"),
		end(100, "dma:lanai0:host", "res", "held"), // zero-duration grant
		begin(200, "dma:lanai0:host", "res", "wait"),
		end(200, "dma:lanai0:host", "res", "wait"), // zero-duration wait
	}
	rep := feed(t, evs, 1000, trace.Snapshot{})
	rs := findClass(t, rep, "host-dma")
	if rs.BusyFrac != 0 || rs.PeakBucketFrac != 0 {
		t.Errorf("zero-duration span counted busy: frac %v, peak %v", rs.BusyFrac, rs.PeakBucketFrac)
	}
	if rs.Grants != 1 {
		t.Errorf("grants = %d, want 1 (zero-duration grants still count)", rs.Grants)
	}
	if rs.WaitCount != 1 || rs.WaitTotalNS != 0 || rs.WaitMaxNS != 0 {
		t.Errorf("zero-duration wait: count %d, total %d, max %d", rs.WaitCount, rs.WaitTotalNS, rs.WaitMaxNS)
	}
}

func TestNestedSpansUnionCounted(t *testing.T) {
	// A dma transfer span nested inside the res held span on the same
	// component must not double-count busy time.
	evs := []trace.Event{
		begin(0, "dma:lanai0:host", "res", "held"),
		begin(100, "dma:lanai0:host", "dma", "transfer"),
		end(400, "dma:lanai0:host", "dma", "transfer"),
		end(500, "dma:lanai0:host", "res", "held"),
	}
	rep := feed(t, evs, 1000, trace.Snapshot{})
	rs := findClass(t, rep, "host-dma")
	if rs.BusyFrac != 0.5 {
		t.Errorf("busy frac = %v, want 0.5 (union of nested spans)", rs.BusyFrac)
	}
}

func TestWaitPairingFIFO(t *testing.T) {
	// Two waiters queue; FIFO pairing credits the first End to the first
	// Begin: waits of 300 ns and 500 ns, not 400/400.
	evs := []trace.Event{
		begin(0, "bus:pci:node0", "res", "wait"),
		begin(200, "bus:pci:node0", "res", "wait"),
		end(300, "bus:pci:node0", "res", "wait"),
		end(700, "bus:pci:node0", "res", "wait"),
	}
	rep := feed(t, evs, 1000, trace.Snapshot{})
	rs := findClass(t, rep, "bus-pci")
	if rs.WaitCount != 2 || rs.WaitTotalNS != 800 {
		t.Errorf("waits = %d totaling %d ns, want 2 totaling 800", rs.WaitCount, rs.WaitTotalNS)
	}
	if rs.WaitMaxNS != 500 {
		t.Errorf("max wait = %d, want 500 (FIFO pairing)", rs.WaitMaxNS)
	}
	if rs.QueueMax != 2 {
		t.Errorf("max queue depth = %d, want 2", rs.QueueMax)
	}
}

func TestPendingWaitCensoredAtFinalize(t *testing.T) {
	evs := []trace.Event{
		begin(600, "bus:pci:node0", "res", "wait"),
	}
	rep := feed(t, evs, 1000, trace.Snapshot{})
	rs := findClass(t, rep, "bus-pci")
	if rs.WaitCount != 1 || rs.WaitTotalNS != 400 {
		t.Errorf("censored wait = %d totaling %d ns, want 1 totaling 400", rs.WaitCount, rs.WaitTotalNS)
	}
}

func TestPhaseAttribution(t *testing.T) {
	// One span entirely in phase "a", one crossing the a->b boundary.
	evs := []trace.Event{
		{T: 0, Ph: trace.PhaseInstant, Component: "bench", Category: "phase", Name: "a"},
		begin(100, "node0/lcp", "lcp", "dispatch"),
		end(200, "node0/lcp", "lcp", "dispatch"),
		begin(300, "node0/lcp", "lcp", "dispatch"),
		{T: 400, Ph: trace.PhaseInstant, Component: "bench", Category: "phase", Name: "b"},
		end(600, "node0/lcp", "lcp", "dispatch"),
	}
	rep := feed(t, evs, 1000, trace.Snapshot{})
	// Implicit "run" phase [0,0), then a [0,400), then b [400,1000).
	if len(rep.Phases) != 3 || rep.Phases[1].Name != "a" || rep.Phases[2].Name != "b" {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	rs := findClass(t, rep, "lcp")
	if len(rs.PerPhase) != 3 {
		t.Fatalf("per-phase entries = %d, want 3", len(rs.PerPhase))
	}
	// Phase a: 100 ns complete span + 100 ns of the crossing span over a
	// 400 ns phase = 0.5. Phase b: 200 ns over 600 ns = 1/3.
	if got := rs.PerPhase[1].BusyFrac; got != 0.5 {
		t.Errorf("phase a busy frac = %v, want 0.5 (boundary flush)", got)
	}
	if got := rs.PerPhase[2].BusyFrac; got != float64(200)/600 {
		t.Errorf("phase b busy frac = %v, want 1/3", got)
	}
}

func TestOccupancyNormalization(t *testing.T) {
	caps := analysis.Config{}
	evs := []trace.Event{
		{T: 0, Ph: trace.PhaseCounter, Component: "lanai0", Category: "sram", Value: 128 << 10},
		{T: 500, Ph: trace.PhaseCounter, Component: "lanai0", Category: "sram", Value: 0},
		{T: 0, Ph: trace.PhaseCounter, Component: "lanai0", Category: "rl", Name: "window_occupancy", Value: 0.75},
	}
	a := analysis.NewAnalyzer(caps)
	for _, ev := range evs {
		a.Consume(ev)
	}
	rep := a.Finalize(1000, trace.Snapshot{})
	if len(rep.Occupancies) != 2 {
		t.Fatalf("occupancy tracks = %d, want 2 (sram, rl-window)", len(rep.Occupancies))
	}
	for _, o := range rep.Occupancies {
		switch o.Class {
		case "sram":
			// 128 KB of the default 256 KB for half the window.
			if o.PeakFrac != 0.5 || o.MeanFrac != 0.25 {
				t.Errorf("sram occupancy peak %v mean %v, want 0.5 / 0.25", o.PeakFrac, o.MeanFrac)
			}
		case "rl-window":
			if o.PeakFrac != 0.75 {
				t.Errorf("rl window peak = %v, want 0.75", o.PeakFrac)
			}
		}
	}
}

func TestRanking(t *testing.T) {
	evs := []trace.Event{
		// host-dma: 80% busy. lcp: 40% busy but huge wait attribution.
		begin(0, "dma:lanai0:host", "res", "held"),
		end(800, "dma:lanai0:host", "res", "held"),
		begin(0, "node0/lcp", "lcp", "loop"),
		end(400, "node0/lcp", "lcp", "loop"),
	}
	rep := feed(t, evs, 1000, trace.Snapshot{})
	if rep.Resources[0].Class != "host-dma" || rep.Resources[1].Class != "lcp" {
		t.Errorf("ranking = %s, %s; want host-dma first", rep.Resources[0].Class, rep.Resources[1].Class)
	}
	if !strings.Contains(rep.Verdict, "host DMA") {
		t.Errorf("verdict does not name the limiting resource: %q", rep.Verdict)
	}
}

// TestReportJSONDeterministic double-feeds the same synthetic stream and
// requires byte-identical JSON — the unit-level version of the sweeps'
// double-run drift checks.
func TestReportJSONDeterministic(t *testing.T) {
	evs := []trace.Event{
		begin(0, "dma:lanai0:host", "res", "held"),
		begin(50, "dma:lanai0:host", "res", "wait"),
		end(300, "dma:lanai0:host", "res", "held"),
		end(300, "dma:lanai0:host", "res", "wait"),
		{T: 400, Ph: trace.PhaseInstant, Component: "bench", Category: "phase", Name: "drain"},
		begin(450, "myri:nic0:tx", "res", "held"),
		end(700, "myri:nic0:tx", "res", "held"),
		{T: 500, Ph: trace.PhaseCounter, Component: "lanai0", Category: "sram", Value: 4096},
	}
	snap := trace.Snapshot{Counters: []trace.CounterValue{
		{Name: "dma:lanai0:host/bytes", Value: 1 << 16},
		{Name: "nic0/bytes_injected", Value: 1 << 14},
	}}
	var out [2]bytes.Buffer
	for i := range out {
		rep := feed(t, evs, 1000, snap)
		if err := rep.WriteJSON(&out[i], "  "); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Errorf("double-feed JSON drifted:\n%s\nvs\n%s", out[0].String(), out[1].String())
	}
	if rate := findClass(t, feed(t, evs, 1000, snap), "host-dma").RateFrac; rate <= 0 {
		t.Errorf("achieved rate fraction = %v, want > 0 from snapshot bytes", rate)
	}
}
