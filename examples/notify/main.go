// Notify: transfer of control with VMMC notifications (§2). A server
// exports a request buffer with notifications enabled and registers a
// user-level handler; clients attach a notification to their requests and
// the handler fires — after the data is already in the server's memory —
// and sends a reply back. No server polling loop, no receive calls.
package main

import (
	"fmt"
	"log"

	vmmcnet "repro"
)

const (
	reqTag   = 1
	replyTag = 2
	slotSize = vmmcnet.PageSize
)

func main() {
	eng := vmmcnet.NewEngine()
	cluster, err := vmmcnet.NewCluster(eng, vmmcnet.Options{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}

	cluster.Go("notify-demo", func(p *vmmcnet.Proc) {
		server, err := cluster.Nodes[0].NewProcess(p)
		if err != nil {
			log.Fatal(err)
		}

		// Request window: one slot per client, notifications allowed.
		reqBuf, _ := server.Malloc(2 * slotSize)
		if err := server.Export(p, reqTag, reqBuf, 2*slotSize, nil, true); err != nil {
			log.Fatal(err)
		}

		// Reply windows live on the clients; the server imports them as
		// the clients appear (here: statically, for clarity).
		type client struct {
			proc  *vmmcnet.Process
			reply vmmcnet.VirtAddr
		}
		clients := make([]client, 2)
		for i := range clients {
			proc, err := cluster.Nodes[i+1].NewProcess(p)
			if err != nil {
				log.Fatal(err)
			}
			reply, _ := proc.Malloc(slotSize)
			if err := proc.Export(p, replyTag, reply, slotSize, nil, false); err != nil {
				log.Fatal(err)
			}
			clients[i] = client{proc: proc, reply: reply}
		}
		replyDest := make([]vmmcnet.ProxyAddr, 2)
		for i := range clients {
			dest, _, err := server.Import(p, i+1, replyTag)
			if err != nil {
				log.Fatal(err)
			}
			replyDest[i] = dest
		}

		// The handler runs in the server process when a notifying
		// message has been delivered; it reads the request from its own
		// memory and sends the uppercased version back.
		srvSrc, _ := server.Malloc(slotSize)
		server.RegisterHandler(reqTag, func(hp *vmmcnet.Proc, from vmmcnet.ProcID, tag uint32, offset, length int) {
			// The notification identifies the sender; the slot layout
			// (client i writes slot i) lets us cross-check it.
			slot := offset / slotSize
			data, _ := server.Read(reqBuf+vmmcnet.VirtAddr(offset), length)
			fmt.Printf("[%8v] server handler: slot %d (node %d) got %q\n", hp.Now(), slot, from.Node, data)
			up := make([]byte, len(data))
			for i, b := range data {
				if 'a' <= b && b <= 'z' {
					b -= 32
				}
				up[i] = b
			}
			if err := server.Write(srvSrc, up); err != nil {
				log.Fatal(err)
			}
			if err := server.SendMsgSync(hp, srvSrc, replyDest[slot], len(up), vmmcnet.SendOptions{}); err != nil {
				log.Fatal(err)
			}
		})

		// Clients import the server's request window and fire notifying
		// sends into their own slots.
		for i, cl := range clients {
			reqDest, _, err := cl.proc.Import(p, 0, reqTag)
			if err != nil {
				log.Fatal(err)
			}
			src, _ := cl.proc.Malloc(slotSize)
			msg := []byte(fmt.Sprintf("hello from client %d", i))
			if err := cl.proc.Write(src, msg); err != nil {
				log.Fatal(err)
			}
			slotDest := reqDest + vmmcnet.ProxyAddr(i*slotSize)
			if err := cl.proc.SendMsgSync(p, src, slotDest, len(msg), vmmcnet.SendOptions{Notify: true}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%8v] client %d sent a notifying request\n", p.Now(), i)
		}

		// Each client waits for its reply by watching its own memory.
		for i, cl := range clients {
			cl.proc.SpinByte(p, cl.reply, 'H')
			got, _ := cl.proc.Read(cl.reply, len("HELLO FROM CLIENT 0"))
			fmt.Printf("[%8v] client %d reply: %q\n", p.Now(), i, got)
		}
	})

	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
}
