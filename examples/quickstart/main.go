// Quickstart: the smallest complete VMMC program — export, import, send,
// and observe the data appear in the receiver's memory with no receive
// call. Prints the virtual timeline so the cost structure is visible.
package main

import (
	"fmt"
	"log"

	vmmcnet "repro"
)

func main() {
	eng := vmmcnet.NewEngine()
	cluster, err := vmmcnet.NewCluster(eng, vmmcnet.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}

	cluster.Go("quickstart", func(p *vmmcnet.Proc) {
		// One process on each node.
		recv, err := cluster.Nodes[1].NewProcess(p)
		if err != nil {
			log.Fatal(err)
		}
		send, err := cluster.Nodes[0].NewProcess(p)
		if err != nil {
			log.Fatal(err)
		}

		// The receiver exports a page of its address space as a receive
		// buffer; from now on, imported senders may deposit data there.
		buf, _ := recv.Malloc(vmmcnet.PageSize)
		if err := recv.Export(p, 42, buf, vmmcnet.PageSize, nil, false); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] receiver exported a %d-byte buffer under tag 42\n", p.Now(), vmmcnet.PageSize)

		// The sender imports it into its destination proxy space.
		dest, n, err := send.Import(p, 1, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] sender imported it: proxy address %#x, %d bytes\n", p.Now(), dest, n)

		// Deliberate update: data moves from the sender's virtual memory
		// straight into the receiver's, without any receive operation.
		src, _ := send.Malloc(vmmcnet.PageSize)
		msg := []byte("virtual memory-mapped communication")
		if err := send.Write(src, msg); err != nil {
			log.Fatal(err)
		}
		start := p.Now()
		if err := send.SendMsgSync(p, src, dest, len(msg), vmmcnet.SendOptions{}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] SendMsg returned after %v (send buffer reusable)\n", p.Now(), p.Now()-start)

		// The receiver just looks at its own memory.
		recv.SpinByte(p, buf, 'v')
		got, _ := recv.Read(buf, len(msg))
		fmt.Printf("[%8v] receiver's memory now reads: %q\n", p.Now(), got)
	})

	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
}
