// Pipeline: a three-stage processing pipeline built on the msglib tagged
// message-passing layer (itself built purely on VMMC export/import/send —
// the kind of user-level message-passing library the paper's introduction
// motivates). Stage 0 produces records, stage 1 transforms them, stage 2
// aggregates; flow control is the ring-buffer back-pressure the library
// derives from VMMC, with no kernel involvement anywhere on the data path.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	vmmcnet "repro"
	"repro/internal/msglib"
)

const (
	records  = 200
	ringSize = 4 * vmmcnet.PageSize
	tagData  = 1
	tagStop  = 2
)

func main() {
	eng := vmmcnet.NewEngine()
	cluster, err := vmmcnet.NewCluster(eng, vmmcnet.Options{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}

	cluster.Go("pipeline", func(p *vmmcnet.Proc) {
		// One process per node; ports wired 0 -> 1 -> 2.
		procs := make([]*vmmcnet.Process, 3)
		ports := make([]*msglib.Port, 3)
		for i := range procs {
			var err error
			if procs[i], err = cluster.Nodes[i].NewProcess(p); err != nil {
				log.Fatal(err)
			}
			if ports[i], err = msglib.NewPort(p, procs[i], uint32(i), ringSize); err != nil {
				log.Fatal(err)
			}
		}
		if err := ports[0].Connect(p, 1, 1); err != nil {
			log.Fatal(err)
		}
		if err := ports[1].Connect(p, 2, 2); err != nil {
			log.Fatal(err)
		}
		// Stage 2 needs no outgoing connection; results are summed there.

		done := false
		var sum uint64

		// Stage 1: transform (square each value) and forward.
		eng.Go("stage1", func(sp *vmmcnet.Proc) {
			for {
				tag, msg, err := ports[1].Recv(sp)
				if err != nil {
					log.Fatal(err)
				}
				if tag == tagStop {
					if err := ports[1].Send(sp, tagStop, nil); err != nil {
						log.Fatal(err)
					}
					return
				}
				v := binary.BigEndian.Uint64(msg)
				out := make([]byte, 8)
				binary.BigEndian.PutUint64(out, v*v)
				if err := ports[1].Send(sp, tagData, out); err != nil {
					log.Fatal(err)
				}
			}
		})

		// Stage 2: aggregate.
		eng.Go("stage2", func(sp *vmmcnet.Proc) {
			for {
				tag, msg, err := ports[2].Recv(sp)
				if err != nil {
					log.Fatal(err)
				}
				if tag == tagStop {
					done = true
					return
				}
				sum += binary.BigEndian.Uint64(msg)
			}
		})

		// Stage 0: produce.
		start := p.Now()
		buf := make([]byte, 8)
		for i := uint64(1); i <= records; i++ {
			binary.BigEndian.PutUint64(buf, i)
			if err := ports[0].Send(p, tagData, buf); err != nil {
				log.Fatal(err)
			}
		}
		if err := ports[0].Send(p, tagStop, nil); err != nil {
			log.Fatal(err)
		}
		for !done {
			p.Sleep(10 * vmmcnet.Microsecond)
		}
		elapsed := p.Now() - start

		want := uint64(0)
		for i := uint64(1); i <= records; i++ {
			want += i * i
		}
		fmt.Printf("pipeline processed %d records in %v (%.1f us/record end-to-end)\n",
			records, elapsed, elapsed.Micros()/records)
		fmt.Printf("sum of squares = %d (expected %d)\n", sum, want)
		if sum != want {
			log.Fatal("pipeline corrupted data")
		}
	})

	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
}
