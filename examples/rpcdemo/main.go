// RPCDemo: a SunRPC-compatible key-value service over vRPC (§5.4). The
// server registers XDR-typed procedures; the client calls them through the
// standard stub interface; the wire format is plain SunRPC, but the
// transport is VMMC deliberate updates — 66 us round trips instead of the
// milliseconds a kernel UDP stack costs.
package main

import (
	"fmt"
	"log"

	vmmcnet "repro"
	"repro/internal/rpc"
	"repro/internal/xdr"
)

const (
	kvProg = 0x20049999
	kvVers = 1

	procPut = 1
	procGet = 2
)

func main() {
	eng := vmmcnet.NewEngine()
	cluster, err := vmmcnet.NewCluster(eng, vmmcnet.Options{Nodes: 2, MemBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}

	cluster.Go("kv-demo", func(p *vmmcnet.Proc) {
		// Server on node 1.
		sproc, err := cluster.Nodes[1].NewProcess(p)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := rpc.NewServer(p, sproc, 1)
		if err != nil {
			log.Fatal(err)
		}
		store := map[string][]byte{}
		srv.Register(kvProg, kvVers, procPut, func(hp *vmmcnet.Proc, args *xdr.Decoder, res *xdr.Encoder) uint32 {
			key, err := args.String(256)
			if err != nil {
				return xdr.AcceptGarbageArgs
			}
			val, err := args.Opaque(64 << 10)
			if err != nil {
				return xdr.AcceptGarbageArgs
			}
			store[key] = val
			res.PutBool(true)
			return xdr.AcceptSuccess
		})
		srv.Register(kvProg, kvVers, procGet, func(hp *vmmcnet.Proc, args *xdr.Decoder, res *xdr.Encoder) uint32 {
			key, err := args.String(256)
			if err != nil {
				return xdr.AcceptGarbageArgs
			}
			val, ok := store[key]
			res.PutBool(ok)
			if ok {
				res.PutOpaque(val)
			}
			return xdr.AcceptSuccess
		})
		srv.Start()

		// Client on node 0.
		cproc, err := cluster.Nodes[0].NewProcess(p)
		if err != nil {
			log.Fatal(err)
		}
		client, err := rpc.Dial(p, cproc, 1, 0)
		if err != nil {
			log.Fatal(err)
		}

		put := func(key string, val []byte) {
			err := client.Call(p, kvProg, kvVers, procPut,
				func(e *xdr.Encoder) { e.PutString(key); e.PutOpaque(val) },
				func(d *xdr.Decoder) error { _, err := d.Bool(); return err })
			if err != nil {
				log.Fatal(err)
			}
		}
		get := func(key string) ([]byte, bool) {
			var val []byte
			var ok bool
			err := client.Call(p, kvProg, kvVers, procGet,
				func(e *xdr.Encoder) { e.PutString(key) },
				func(d *xdr.Decoder) error {
					var err error
					if ok, err = d.Bool(); err != nil || !ok {
						return err
					}
					val, err = d.Opaque(64 << 10)
					return err
				})
			if err != nil {
				log.Fatal(err)
			}
			return val, ok
		}

		put("paper", []byte("VMMC on Myrinet, IPPS 1997"))
		put("latency", []byte("9.8 microseconds"))

		start := p.Now()
		v, ok := get("paper")
		rtt := p.Now() - start
		fmt.Printf("get(paper) = %q (found=%v) in %v\n", v, ok, rtt)

		v, ok = get("latency")
		fmt.Printf("get(latency) = %q (found=%v)\n", v, ok)

		if _, ok = get("missing"); ok {
			log.Fatal("phantom key")
		}
		fmt.Println("get(missing) correctly not found")

		// Timed null-ish calls to show the steady-state RTT.
		const iters = 50
		start = p.Now()
		for i := 0; i < iters; i++ {
			get("latency")
		}
		fmt.Printf("steady-state small-get RTT: %.1f us (paper's null RPC: 66 us)\n",
			(p.Now()-start).Micros()/iters)
	})

	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
}
