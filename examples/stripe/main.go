// Stripe: the paper's motivating use case — "a high-performance server
// out of a network of commodity systems". A client reads a file striped
// across three storage nodes; each node's handler deposits its stripe
// directly into the client's exported read buffer at the right offset
// (zero-copy scatter-gather across the cluster), in parallel.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	vmmcnet "repro"
)

const (
	stripeNodes = 3
	blockBytes  = 8 << 10
	fileBlocks  = 12 // 96 KB file, blocks striped round-robin

	tagRequest = 1 // per storage node: request slots (notifying)
	tagData    = 2 // client: read destination buffer
)

func main() {
	eng := vmmcnet.NewEngine()
	cluster, err := vmmcnet.NewCluster(eng, vmmcnet.Options{Nodes: stripeNodes + 1})
	if err != nil {
		log.Fatal(err)
	}

	cluster.Go("stripe", func(p *vmmcnet.Proc) {
		// Storage nodes hold their stripes in memory and export a request
		// slot; the client exports the read buffer all servers write into.
		client, err := cluster.Nodes[stripeNodes].NewProcess(p)
		if err != nil {
			log.Fatal(err)
		}
		const fileBytes = fileBlocks * blockBytes
		readBuf, _ := client.Malloc(fileBytes)
		if err := client.Export(p, tagData, readBuf, fileBytes, nil, false); err != nil {
			log.Fatal(err)
		}

		type server struct {
			proc   *vmmcnet.Process
			reqBuf vmmcnet.VirtAddr
			toReq  vmmcnet.ProxyAddr // client's import of the server's request slot
		}
		servers := make([]*server, stripeNodes)
		for i := range servers {
			proc, err := cluster.Nodes[i].NewProcess(p)
			if err != nil {
				log.Fatal(err)
			}
			sv := &server{proc: proc}
			// The node's stripe content: block b (global) lives on node
			// b%stripeNodes; fill with a recognizable pattern.
			store, _ := proc.Malloc(fileBytes)
			for b := i; b < fileBlocks; b += stripeNodes {
				block := make([]byte, blockBytes)
				for j := range block {
					block[j] = byte(b*31 + j)
				}
				if err := proc.Write(store+vmmcnet.VirtAddr(b*blockBytes), block); err != nil {
					log.Fatal(err)
				}
			}
			sv.reqBuf, _ = proc.Malloc(vmmcnet.PageSize)
			if err := proc.Export(p, tagRequest, sv.reqBuf, vmmcnet.PageSize, nil, true); err != nil {
				log.Fatal(err)
			}
			toData, _, err := proc.Import(p, stripeNodes, tagData)
			if err != nil {
				log.Fatal(err)
			}

			// Request handler: [blockNo uint32] -> push the block into
			// the client's buffer at its global offset.
			proc.RegisterHandler(tagRequest, func(hp *vmmcnet.Proc, from vmmcnet.ProcID, tag uint32, offset, length int) {
				req, _ := proc.Read(sv.reqBuf+vmmcnet.VirtAddr(offset), 4)
				blockNo := int(binary.BigEndian.Uint32(req))
				src := store + vmmcnet.VirtAddr(blockNo*blockBytes)
				dst := toData + vmmcnet.ProxyAddr(blockNo*blockBytes)
				if err := proc.SendMsgSync(hp, src, dst, blockBytes, vmmcnet.SendOptions{}); err != nil {
					log.Fatal(err)
				}
			})
			servers[i] = sv
		}
		for i, sv := range servers {
			dest, _, err := client.Import(p, i, tagRequest)
			if err != nil {
				log.Fatal(err)
			}
			sv.toReq = dest
		}

		// The client requests every block; requests to different nodes
		// proceed in parallel, and the data lands scattered into one
		// contiguous buffer with no client-side copying or receives.
		start := p.Now()
		reqSrc, _ := client.Malloc(vmmcnet.PageSize)
		for b := 0; b < fileBlocks; b++ {
			req := make([]byte, 4)
			binary.BigEndian.PutUint32(req, uint32(b))
			if err := client.Write(reqSrc, req); err != nil {
				log.Fatal(err)
			}
			sv := servers[b%stripeNodes]
			// One slot per outstanding request on each server: back-to-back
			// requests must not overwrite one another before the handler
			// reads them (the handler tells slots apart by its offset).
			slot := vmmcnet.ProxyAddr((b / stripeNodes) * 8)
			if err := client.SendMsgSync(p, reqSrc, sv.toReq+slot, 4, vmmcnet.SendOptions{Notify: true}); err != nil {
				log.Fatal(err)
			}
		}
		// Completion: poll the last byte of every block.
		for b := 0; b < fileBlocks; b++ {
			last := readBuf + vmmcnet.VirtAddr((b+1)*blockBytes-1)
			want := byte(b*31 + blockBytes - 1)
			client.SpinByte(p, last, want)
		}
		elapsed := p.Now() - start

		// Verify the whole file.
		for b := 0; b < fileBlocks; b++ {
			got, _ := client.Read(readBuf+vmmcnet.VirtAddr(b*blockBytes), blockBytes)
			for j, v := range got {
				if v != byte(b*31+j) {
					log.Fatalf("block %d corrupted at %d", b, j)
				}
			}
		}
		mbps := float64(fileBytes) / elapsed.Seconds() / 1e6
		fmt.Printf("read %d KB striped over %d nodes in %v (%.1f MB/s aggregate)\n",
			fileBytes/1024, stripeNodes, elapsed, mbps)
		fmt.Println("all blocks verified: zero-copy scatter-gather into one buffer")
	})

	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
}
