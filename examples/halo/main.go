// Halo: a classic parallel-computing workload on VMMC — a 1-D periodic
// domain decomposition where every node iteratively averages its cells
// and exchanges boundary ("halo") values with both neighbours each step.
// This is the multicomputer use case the paper builds toward: each
// process exports its halo slots once, imports its neighbours' once, and
// then steps using nothing but SendMsg and polls of its own memory —
// zero-copy, no receive calls, no server loops.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	vmmcnet "repro"
)

const (
	nodes = 4
	cells = 256 // interior cells per node
	steps = 50

	tagHalo = 7

	// Export layout (one page): two halo slots of [8-byte value][1-byte
	// step flag], written by the left and right neighbour respectively.
	slotL    = 0
	slotR    = 16
	slotSize = 9
)

type worker struct {
	proc   *vmmcnet.Process
	halo   vmmcnet.VirtAddr // exported page holding the two slots
	src    vmmcnet.VirtAddr // staging for outgoing slot writes
	toL    vmmcnet.ProxyAddr
	toR    vmmcnet.ProxyAddr
	values []float64 // [0] left halo, [1..cells] interior, [cells+1] right halo
}

func main() {
	eng := vmmcnet.NewEngine()
	cluster, err := vmmcnet.NewCluster(eng, vmmcnet.Options{Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}

	workers := make([]*worker, nodes)
	cluster.Go("halo", func(p *vmmcnet.Proc) {
		for i := 0; i < nodes; i++ {
			proc, err := cluster.Nodes[i].NewProcess(p)
			if err != nil {
				log.Fatal(err)
			}
			halo, _ := proc.Malloc(vmmcnet.PageSize)
			if err := proc.Export(p, tagHalo, halo, vmmcnet.PageSize, nil, false); err != nil {
				log.Fatal(err)
			}
			src, _ := proc.Malloc(vmmcnet.PageSize)
			w := &worker{proc: proc, halo: halo, src: src, values: make([]float64, cells+2)}
			if i == 0 {
				w.values[cells/2] = float64(cells * nodes) // spike
			}
			workers[i] = w
		}
		for i, w := range workers {
			l, r := (i+nodes-1)%nodes, (i+1)%nodes
			var err error
			if w.toL, _, err = w.proc.Import(p, l, tagHalo); err != nil {
				log.Fatal(err)
			}
			if w.toR, _, err = w.proc.Import(p, r, tagHalo); err != nil {
				log.Fatal(err)
			}
		}

		done := 0
		start := p.Now()
		for i := range workers {
			i := i
			eng.Go(fmt.Sprintf("worker%d", i), func(wp *vmmcnet.Proc) {
				if err := run(wp, workers[i]); err != nil {
					log.Fatal(err)
				}
				done++
			})
		}
		for done < nodes {
			p.Sleep(100 * vmmcnet.Microsecond)
		}
		elapsed := p.Now() - start

		total := 0.0
		for _, w := range workers {
			for _, v := range w.values[1 : cells+1] {
				total += v
			}
		}
		fmt.Printf("%d steps on %d nodes in %v (%.1f us/step/node)\n",
			steps, nodes, elapsed, elapsed.Micros()/float64(steps))
		fmt.Printf("mass conservation: %.6f (expected %d)\n", total, cells*nodes)
		if math.Abs(total-float64(cells*nodes)) > 1e-6 {
			log.Fatal("halo exchange lost mass: boundary values corrupted")
		}
	})

	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
}

// run executes the step loop for one worker: exchange halos, average.
func run(p *vmmcnet.Proc, w *worker) error {
	for s := 1; s <= steps; s++ {
		flag := byte(s%250 + 1)

		// Publish my boundary cells into the neighbours' halo slots: my
		// leftmost interior value goes to my left neighbour's RIGHT slot,
		// my rightmost to my right neighbour's LEFT slot.
		if err := w.sendSlot(p, w.toL+slotR, w.values[1], flag); err != nil {
			return err
		}
		if err := w.sendSlot(p, w.toR+slotL, w.values[cells], flag); err != nil {
			return err
		}

		// Wait for both neighbours' values for this step to land in my
		// own memory, then read them.
		w.proc.SpinByte(p, w.halo+slotL+8, flag)
		w.proc.SpinByte(p, w.halo+slotR+8, flag)
		lv, err := w.readSlot(p, slotL)
		if err != nil {
			return err
		}
		rv, err := w.readSlot(p, slotR)
		if err != nil {
			return err
		}
		w.values[0], w.values[cells+1] = lv, rv

		// Relaxation step: three-point average.
		next := make([]float64, cells+2)
		for i := 1; i <= cells; i++ {
			next[i] = (w.values[i-1] + w.values[i] + w.values[i+1]) / 3
		}
		// Mass correction for the averaging stencil at the halos is not
		// needed with periodic boundaries: every cell contributes 1/3 to
		// itself and each neighbour.
		copy(w.values[1:cells+1], next[1:cells+1])
	}
	return nil
}

func (w *worker) sendSlot(p *vmmcnet.Proc, dest vmmcnet.ProxyAddr, v float64, flag byte) error {
	buf := make([]byte, slotSize)
	binary.BigEndian.PutUint64(buf, math.Float64bits(v))
	buf[8] = flag
	if err := w.proc.Write(w.src, buf); err != nil {
		return err
	}
	return w.proc.SendMsgSync(p, w.src, dest, slotSize, vmmcnet.SendOptions{})
}

func (w *worker) readSlot(p *vmmcnet.Proc, off int) (float64, error) {
	b, err := w.proc.Read(w.halo+vmmcnet.VirtAddr(off), 8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}
