package vmmcnet_test

import (
	"testing"

	vmmcnet "repro"
)

// The public API surface, exercised exactly as the package documentation
// shows it.
func TestPublicAPIRoundTrip(t *testing.T) {
	eng := vmmcnet.NewEngine()
	c, err := vmmcnet.NewCluster(eng, vmmcnet.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	c.Go("app", func(p *vmmcnet.Proc) {
		recv, err := c.Nodes[1].NewProcess(p)
		if err != nil {
			t.Error(err)
			return
		}
		send, err := c.Nodes[0].NewProcess(p)
		if err != nil {
			t.Error(err)
			return
		}
		buf, _ := recv.Malloc(vmmcnet.PageSize)
		if err := recv.Export(p, 1, buf, vmmcnet.PageSize, nil, false); err != nil {
			t.Error(err)
			return
		}
		dest, _, err := send.Import(p, 1, 1)
		if err != nil {
			t.Error(err)
			return
		}
		src, _ := send.Malloc(vmmcnet.PageSize)
		if err := send.Write(src, []byte("hello")); err != nil {
			t.Error(err)
			return
		}
		if err := send.SendMsgSync(p, src, dest, 5, vmmcnet.SendOptions{}); err != nil {
			t.Error(err)
			return
		}
		recv.SpinByte(p, buf, 'h')
		got, _ = recv.Read(buf, 5)
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("received %q", got)
	}
}

func TestPublicAPIProfileOverride(t *testing.T) {
	// A slower platform profile must visibly slow the system: double the
	// LCP dispatch cost and latency should rise.
	measure := func(prof *vmmcnet.Profile) vmmcnet.Time {
		eng := vmmcnet.NewEngine()
		c, err := vmmcnet.NewCluster(eng, vmmcnet.Options{Nodes: 2, Prof: prof})
		if err != nil {
			t.Fatal(err)
		}
		var rtt vmmcnet.Time
		c.Go("app", func(p *vmmcnet.Proc) {
			recv, _ := c.Nodes[1].NewProcess(p)
			send, _ := c.Nodes[0].NewProcess(p)
			buf, _ := recv.Malloc(vmmcnet.PageSize)
			if err := recv.Export(p, 1, buf, vmmcnet.PageSize, nil, false); err != nil {
				t.Error(err)
				return
			}
			dest, _, err := send.Import(p, 1, 1)
			if err != nil {
				t.Error(err)
				return
			}
			src, _ := send.Malloc(vmmcnet.PageSize)
			if err := send.Write(src, []byte{1}); err != nil {
				t.Error(err)
				return
			}
			start := p.Now()
			if err := send.SendMsgSync(p, src, dest, 1, vmmcnet.SendOptions{}); err != nil {
				t.Error(err)
				return
			}
			recv.SpinByte(p, buf, 1)
			rtt = p.Now() - start
		})
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		return rtt
	}
	base := measure(nil)
	slow := vmmcnet.DefaultProfile()
	slow.LCPDispatch *= 10
	slowRTT := measure(&slow)
	if slowRTT <= base {
		t.Errorf("10x dispatch cost did not slow delivery: %v vs %v", slowRTT, base)
	}
	if base < vmmcnet.Micros(5) || base > vmmcnet.Micros(20) {
		t.Errorf("baseline delivery = %v, outside sane range", base)
	}
}
