// Command vrpcbench measures vRPC (§5.4): null-call round trip and bulk
// echo bandwidth over VMMC/Myrinet, plus payload sweeps.
//
// Usage:
//
//	vrpcbench                 # defaults: null RTT + sweep
//	vrpcbench -iters 200
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/vmmc"
	"repro/internal/xdr"
)

const (
	prog     = 0x20000099
	procNull = 0
	procEcho = 1
)

func main() {
	iters := flag.Int("iters", 100, "calls per measurement")
	flag.Parse()

	eng := sim.NewEngine()
	cl, err := vmmc.NewCluster(eng, vmmc.Options{Nodes: 2, MemBytes: 64 << 20})
	if err != nil {
		fatal(err)
	}
	cl.Go("vrpcbench", func(p *sim.Proc) {
		sproc, err := cl.Nodes[1].NewProcess(p)
		if err != nil {
			fatal(err)
		}
		srv, err := rpc.NewServer(p, sproc, 1)
		if err != nil {
			fatal(err)
		}
		srv.Register(prog, 1, procNull, func(p *sim.Proc, args *xdr.Decoder, res *xdr.Encoder) uint32 {
			return xdr.AcceptSuccess
		})
		srv.Register(prog, 1, procEcho, func(p *sim.Proc, args *xdr.Decoder, res *xdr.Encoder) uint32 {
			data, err := args.Opaque(1 << 20)
			if err != nil {
				return xdr.AcceptGarbageArgs
			}
			res.PutOpaque(data)
			return xdr.AcceptSuccess
		})
		srv.Start()

		cproc, err := cl.Nodes[0].NewProcess(p)
		if err != nil {
			fatal(err)
		}
		c, err := rpc.Dial(p, cproc, 1, 0)
		if err != nil {
			fatal(err)
		}

		// Null RTT.
		if err := c.Call(p, prog, 1, procNull, nil, nil); err != nil {
			fatal(err)
		}
		start := p.Now()
		for i := 0; i < *iters; i++ {
			if err := c.Call(p, prog, 1, procNull, nil, nil); err != nil {
				fatal(err)
			}
		}
		rtt := (p.Now() - start).Micros() / float64(*iters)
		fmt.Printf("null RPC round trip: %.1f us (paper: 66 us on Myrinet, 33 us on SHRIMP)\n\n", rtt)

		// Payload sweep.
		fmt.Printf("%10s %14s %14s\n", "payload", "RTT (us)", "per-dir MB/s")
		for _, size := range []int{64, 512, 4 << 10, 16 << 10, 64 << 10, 100 << 10} {
			payload := make([]byte, size)
			call := func(q *sim.Proc) error {
				return c.Call(q, prog, 1, procEcho,
					func(e *xdr.Encoder) { e.PutOpaque(payload) },
					func(d *xdr.Decoder) error { _, err := d.Opaque(1 << 20); return err })
			}
			if err := call(p); err != nil {
				fatal(err)
			}
			n := *iters / 5
			if n < 5 {
				n = 5
			}
			start := p.Now()
			for i := 0; i < n; i++ {
				if err := call(p); err != nil {
					fatal(err)
				}
			}
			el := p.Now() - start
			rtt := el.Micros() / float64(n)
			mbps := float64(size) / (el.Seconds() / float64(2*n)) / 1e6
			fmt.Printf("%10d %14.1f %14.1f\n", size, rtt, mbps)
		}
		fmt.Println("\nbandwidth is capped well below raw VMMC by the one copy per receive (§5.4)")
	})
	if err := cl.Start(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vrpcbench:", err)
	os.Exit(1)
}
