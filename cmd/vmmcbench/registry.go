package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/sim"
)

// Per-experiment flags. Each sweep owns the flags carrying its prefix;
// every other experiment ignores them.
var (
	scaleNodes  = flag.String("scale-nodes", "", "scalesweep cluster sizes, comma-separated (default 16,64,256)")
	scaleOut    = flag.String("scale-out", "", "scalesweep: write the BENCH_scale.json artifact here")
	healOutages = flag.String("heal-outages", "", "healsweep link-outage durations in microseconds, comma-separated (default 2000,6000,12000)")
	healOut     = flag.String("heal-out", "", "healsweep: write the BENCH_heal.json artifact here")
	collNodes   = flag.String("coll-nodes", "", "collsweep communicator sizes, comma-separated (default 4,8,16)")
	collOut     = flag.String("coll-out", "", "collsweep: write the BENCH_coll.json artifact here")
	tenantCalls = flag.String("tenant-calls", "", "tenantsweep victim vRPC calls per cell (default 32)")
	tenantRates = flag.String("tenant-rates", "", "tenantsweep qos=on aggressor budgets in bytes/sec, comma-separated (default 5e6,10e6,20e6)")
	tenantOut   = flag.String("tenant-out", "", "tenantsweep: write the BENCH_tenant.json artifact here")
	serveRates  = flag.String("serve-rates", "", "servesweep total offered loads in req/s, comma-separated (default 15000,30000,60000)")
	serveShards = flag.String("serve-shards", "", "servesweep shard counts, comma-separated (default 2)")
	serveReqs   = flag.String("serve-requests", "", "servesweep offered requests per cell (default 240)")
	serveOut    = flag.String("serve-out", "", "servesweep: write the BENCH_serve.json artifact here")
	replicaR    = flag.String("replica-r", "", "replicasweep replication factors, comma-separated (default 1,2,3)")
	replicaRate = flag.String("replica-rates", "", "replicasweep total offered loads in req/s, comma-separated (default 30000,70000)")
	replicaReqs = flag.String("replica-requests", "", "replicasweep offered requests per cell (default 240)")
	replicaOut  = flag.String("replica-out", "", "replicasweep: write the BENCH_replica.json artifact here")
)

// experiment is one registry entry. Deterministic experiments print only
// virtual-time-derived quantities, so their output is byte-identical
// across runs and machines; `-deterministic` selects exactly that set,
// RESULTS.txt is its captured output, and the golden test pins the two
// against each other. scalesweep reports wall-clock events/sec and is
// the one exclusion.
type experiment struct {
	id, what      string
	deterministic bool
	run           func(w io.Writer) error
}

// experiments is the registry, in RESULTS.txt rendering order.
var experiments = []experiment{
	{"headline", "abstract: 9.8 us latency, 80.4 MB/s bandwidth", true,
		tableExp(bench.Headline)},
	{"fig1", "Figure 1: host<->LANai DMA bandwidth vs block size", true,
		seriesExp(bench.Fig1HostDMA)},
	{"fig2", "Figure 2: one-way latency for short messages", true,
		seriesExp(oneSeries(bench.Fig2Latency))},
	{"fig3", "Figure 3: bandwidth vs message size (one-way, bidirectional)", true,
		seriesExp(bench.Fig3Bandwidth)},
	{"fig4", "Figure 4: synchronous/asynchronous send overhead", true,
		seriesExp(bench.Fig4SendOverhead)},
	{"tabhw", "Section 5.2: hardware cost microprobes", true,
		tableExp(bench.TableHardwareCosts)},
	{"tabvrpc", "Section 5.4: vRPC on Myrinet, SHRIMP, and kernel UDP", true,
		tableExp(bench.TableVRPC)},
	{"tabshrimp", "Section 6: SHRIMP vs Myrinet design tradeoffs", true,
		tableExp(bench.TableShrimpComparison)},
	{"tabrelated", "Section 7: Myrinet API, FM, PM, AM comparison", true,
		tableExp(bench.TableRelatedWork)},
	{"extensions", "follow-on features: redirection, reliability, zero-copy RPC", true,
		tableExp(bench.ExtensionsTable)},
	{"ablations", "design-choice ablations (pipelining, tight loop, threshold, TLB, senders)", true,
		runAblations},
	{"faultsweep", "robustness: goodput vs injected wire error rate, reliability off/on", true,
		tableExp(bench.FaultSweep)},
	{"scalesweep", "scaling: all-to-all goodput and simulator events/sec, 16-256 nodes", false,
		runScaleSweep},
	{"healsweep", "self-healing: goodput vs link/switch outage on a redundant fabric", true,
		runHealSweep},
	{"collsweep", "collectives: all-reduce tree vs ring crossover, heal interop", true,
		runCollSweep},
	{"tenantsweep", "multi-tenancy: victim vRPC latency vs bulk neighbor, QoS off/on, crash", true,
		runTenantSweep},
	{"servesweep", "serving tier: open-loop load vs tail latency, admission off/on, hot shard, outage", true,
		runServeSweep},
	{"replicasweep", "replication: R-way shards at equal capacity, load-aware routing, replica kill", true,
		runReplicaSweep},
}

// tableExp adapts a table-producing benchmark to a registry run func.
func tableExp(f func() (bench.Table, error)) func(io.Writer) error {
	return func(w io.Writer) error {
		t, err := f()
		if err != nil {
			return err
		}
		writeTable(w, t)
		return nil
	}
}

// seriesExp adapts a series-producing benchmark to a registry run func.
func seriesExp(f func() ([]bench.Series, error)) func(io.Writer) error {
	return func(w io.Writer) error {
		ss, err := f()
		if err != nil {
			return err
		}
		writeSeries(w, ss...)
		return nil
	}
}

// oneSeries lifts a single-series benchmark into seriesExp's shape.
func oneSeries(f func() (bench.Series, error)) func() ([]bench.Series, error) {
	return func() ([]bench.Series, error) {
		s, err := f()
		return []bench.Series{s}, err
	}
}

func runAblations(w io.Writer) error {
	for _, f := range []func() (bench.Table, error){
		bench.AblationPipeline,
		bench.AblationTightLoop,
		bench.AblationThreshold,
		bench.AblationTLB,
		bench.AblationSenders,
		bench.AblationReliability,
	} {
		t, err := f()
		if err != nil {
			return err
		}
		writeTable(w, t)
	}
	return nil
}

func runScaleSweep(w io.Writer) error {
	nodes, err := parseIntList(*scaleNodes, "-scale-nodes", 2)
	if err != nil {
		return err
	}
	t, err := bench.ScaleSweep(bench.ScaleConfig{Nodes: nodes, Out: *scaleOut})
	if err != nil {
		return err
	}
	writeTable(w, t)
	return nil
}

func runHealSweep(w io.Writer) error {
	outages, err := parseHealOutages(*healOutages)
	if err != nil {
		return err
	}
	t, err := bench.HealSweep(bench.HealConfigSweep{Outages: outages, Out: *healOut})
	if err != nil {
		return err
	}
	writeTable(w, t)
	return nil
}

func runCollSweep(w io.Writer) error {
	nodes, err := parseIntList(*collNodes, "-coll-nodes", 2)
	if err != nil {
		return err
	}
	t, err := bench.CollSweep(bench.CollConfig{Nodes: nodes, Out: *collOut})
	if err != nil {
		return err
	}
	writeTable(w, t)
	return nil
}

func runTenantSweep(w io.Writer) error {
	calls := 0
	if *tenantCalls != "" {
		vals, err := parseIntList(*tenantCalls, "-tenant-calls", 2)
		if err != nil || len(vals) != 1 {
			return fmt.Errorf("bad -tenant-calls %q", *tenantCalls)
		}
		calls = vals[0]
	}
	rates, err := parseFloatList(*tenantRates, "-tenant-rates")
	if err != nil {
		return err
	}
	t, err := bench.TenantSweep(bench.TenantConfig{Calls: calls, Rates: rates, Out: *tenantOut})
	if err != nil {
		return err
	}
	writeTable(w, t)
	return nil
}

func runServeSweep(w io.Writer) error {
	rates, err := parseFloatList(*serveRates, "-serve-rates")
	if err != nil {
		return err
	}
	shards, err := parseIntList(*serveShards, "-serve-shards", 1)
	if err != nil {
		return err
	}
	requests := 0
	if *serveReqs != "" {
		vals, err := parseIntList(*serveReqs, "-serve-requests", 1)
		if err != nil || len(vals) != 1 {
			return fmt.Errorf("bad -serve-requests %q", *serveReqs)
		}
		requests = vals[0]
	}
	t, err := bench.ServeSweep(bench.ServeConfig{
		Rates: rates, Shards: shards, Requests: requests, Out: *serveOut,
	})
	if err != nil {
		return err
	}
	writeTable(w, t)
	return nil
}

func runReplicaSweep(w io.Writer) error {
	rs, err := parseIntList(*replicaR, "-replica-r", 1)
	if err != nil {
		return err
	}
	rates, err := parseFloatList(*replicaRate, "-replica-rates")
	if err != nil {
		return err
	}
	requests := 0
	if *replicaReqs != "" {
		vals, err := parseIntList(*replicaReqs, "-replica-requests", 1)
		if err != nil || len(vals) != 1 {
			return fmt.Errorf("bad -replica-requests %q", *replicaReqs)
		}
		requests = vals[0]
	}
	t, err := bench.ReplicaSweep(bench.ReplicaConfig{
		Rs: rs, Rates: rates, Requests: requests, Out: *replicaOut,
	})
	if err != nil {
		return err
	}
	writeTable(w, t)
	return nil
}

func parseIntList(s, flagName string, min int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var vals []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < min {
			return nil, fmt.Errorf("bad %s entry %q", flagName, part)
		}
		vals = append(vals, n)
	}
	return vals, nil
}

func parseFloatList(s, flagName string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var vals []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad %s entry %q", flagName, part)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

func parseHealOutages(s string) ([]sim.Time, error) {
	us, err := parseIntList(s, "-heal-outages", 1)
	if err != nil {
		return nil, err
	}
	outs := make([]sim.Time, len(us))
	for i, u := range us {
		outs[i] = sim.Time(u) * sim.Microsecond
	}
	return outs, nil
}

func writeSeries(w io.Writer, ss ...bench.Series) {
	for _, s := range ss {
		fmt.Fprintln(w, s.Format())
	}
}

func writeTable(w io.Writer, t bench.Table) { fmt.Fprintln(w, t.Format()) }

// runExperiments renders every experiment matching the filter to w, in
// registry order. It is the single dispatch path shared by main and the
// RESULTS.txt golden test. observing additionally prints the metrics
// summary bench collects when trace/metrics artifacts are enabled;
// analyzing prints the full bottleneck analysis table after each
// experiment (the table-driven -analyze report; sweeps carry their
// per-configuration verdicts in their own table notes regardless).
func runExperiments(w io.Writer, id string, deterministicOnly, observing, analyzing bool) (ran bool, err error) {
	for _, e := range experiments {
		if id != "" && e.id != id {
			continue
		}
		if deterministicOnly && !e.deterministic {
			continue
		}
		fmt.Fprintf(w, "### %s — %s\n\n", e.id, e.what)
		if err := e.run(w); err != nil {
			return ran, fmt.Errorf("%s: %w", e.id, err)
		}
		if observing {
			if s := bench.LastMetricsSummary(); s != "" {
				fmt.Fprintf(w, "%s\n\n", s)
			}
		}
		if analyzing {
			if rep := bench.LastAnalysis(); rep != nil {
				writeTable(w, bench.AnalysisTable(rep))
			}
		}
		ran = true
	}
	return ran, nil
}
