package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestResultsGolden pins RESULTS.txt: rendering the deterministic
// experiment set through the registry must reproduce the checked-in file
// byte for byte. Every quantity those experiments print is virtual-time
// derived, so any diff is a real behavior change in the modeled system —
// regenerate with `go run ./cmd/vmmcbench -deterministic > RESULTS.txt`
// and review the delta like code.
func TestResultsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full deterministic suite is seconds of simulation")
	}
	var buf bytes.Buffer
	ran, err := runExperiments(&buf, "", true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("registry rendered no deterministic experiments")
	}
	want, err := os.ReadFile("../../RESULTS.txt")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	gotLines := strings.Split(buf.String(), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("output drifted from RESULTS.txt at line %d:\n  got:  %q\n  want: %q\n"+
				"regenerate with `go run ./cmd/vmmcbench -deterministic > RESULTS.txt` and review the diff",
				i+1, g, w)
		}
	}
	t.Fatal("output drifted from RESULTS.txt (length mismatch)")
}
