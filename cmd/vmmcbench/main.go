// Command vmmcbench regenerates the figures and tables of the paper's
// evaluation (§5-§7) on the simulated platform.
//
// Usage:
//
//	vmmcbench                         # run everything
//	vmmcbench -experiment fig3        # one experiment
//	vmmcbench -list                   # list experiment ids
//	vmmcbench -experiment headline -trace t.json -metrics m.json
//
// Experiment ids: headline, fig1, fig2, fig3, fig4, tabhw, tabvrpc,
// tabshrimp, tabrelated, extensions, ablations, faultsweep, scalesweep,
// healsweep.
//
// scalesweep also reads -scale-nodes (comma-separated cluster sizes,
// default 16,64,256) and -scale-out (path for the BENCH_scale.json
// machine-readable artifact). healsweep reads -heal-outages
// (comma-separated link-outage durations in microseconds, default
// 2000,6000,12000) and -heal-out (path for the BENCH_heal.json
// artifact, which is byte-identical across runs — every quantity in it
// is virtual-time derived, and the sweep runs each cell twice and fails
// on drift).
//
// With -trace, each run records structured events over virtual time and
// writes a Chrome trace_event JSON file (open in chrome://tracing or
// Perfetto). With -metrics, the run's final metrics snapshot (counters,
// gauges, utilizations) is written as JSON. Either flag also prints a
// short metrics summary after each experiment. Traces carry only virtual
// timestamps, so two runs of the same experiment produce byte-identical
// artifacts. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/sim"
)

var (
	scaleNodes  = flag.String("scale-nodes", "", "scalesweep cluster sizes, comma-separated (default 16,64,256)")
	scaleOut    = flag.String("scale-out", "", "scalesweep: write the BENCH_scale.json artifact here")
	healOutages = flag.String("heal-outages", "", "healsweep link-outage durations in microseconds, comma-separated (default 2000,6000,12000)")
	healOut     = flag.String("heal-out", "", "healsweep: write the BENCH_heal.json artifact here")
)

func parseHealOutages(s string) ([]sim.Time, error) {
	if s == "" {
		return nil, nil
	}
	var outs []sim.Time
	for _, part := range strings.Split(s, ",") {
		us, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || us <= 0 {
			return nil, fmt.Errorf("bad -heal-outages entry %q", part)
		}
		outs = append(outs, sim.Time(us)*sim.Microsecond)
	}
	return outs, nil
}

func parseScaleNodes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var nodes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -scale-nodes entry %q", part)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

type experiment struct {
	id, what string
	run      func() error
}

func printSeries(ss ...bench.Series) {
	for _, s := range ss {
		fmt.Println(s.Format())
	}
}

func printTable(t bench.Table) { fmt.Println(t.Format()) }

var experiments = []experiment{
	{"headline", "abstract: 9.8 us latency, 80.4 MB/s bandwidth", func() error {
		t, err := bench.Headline()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"fig1", "Figure 1: host<->LANai DMA bandwidth vs block size", func() error {
		ss, err := bench.Fig1HostDMA()
		if err != nil {
			return err
		}
		printSeries(ss...)
		return nil
	}},
	{"fig2", "Figure 2: one-way latency for short messages", func() error {
		s, err := bench.Fig2Latency()
		if err != nil {
			return err
		}
		printSeries(s)
		return nil
	}},
	{"fig3", "Figure 3: bandwidth vs message size (one-way, bidirectional)", func() error {
		ss, err := bench.Fig3Bandwidth()
		if err != nil {
			return err
		}
		printSeries(ss...)
		return nil
	}},
	{"fig4", "Figure 4: synchronous/asynchronous send overhead", func() error {
		ss, err := bench.Fig4SendOverhead()
		if err != nil {
			return err
		}
		printSeries(ss...)
		return nil
	}},
	{"tabhw", "Section 5.2: hardware cost microprobes", func() error {
		t, err := bench.TableHardwareCosts()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"tabvrpc", "Section 5.4: vRPC on Myrinet, SHRIMP, and kernel UDP", func() error {
		t, err := bench.TableVRPC()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"tabshrimp", "Section 6: SHRIMP vs Myrinet design tradeoffs", func() error {
		t, err := bench.TableShrimpComparison()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"tabrelated", "Section 7: Myrinet API, FM, PM, AM comparison", func() error {
		t, err := bench.TableRelatedWork()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"extensions", "follow-on features: redirection, reliability, zero-copy RPC", func() error {
		t, err := bench.ExtensionsTable()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"ablations", "design-choice ablations (pipelining, tight loop, threshold, TLB, senders)", func() error {
		for _, f := range []func() (bench.Table, error){
			bench.AblationPipeline,
			bench.AblationTightLoop,
			bench.AblationThreshold,
			bench.AblationTLB,
			bench.AblationSenders,
			bench.AblationReliability,
		} {
			t, err := f()
			if err != nil {
				return err
			}
			printTable(t)
		}
		return nil
	}},
	{"faultsweep", "robustness: goodput vs injected wire error rate, reliability off/on", func() error {
		t, err := bench.FaultSweep()
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"scalesweep", "scaling: all-to-all goodput and simulator events/sec, 16-256 nodes", func() error {
		nodes, err := parseScaleNodes(*scaleNodes)
		if err != nil {
			return err
		}
		t, err := bench.ScaleSweep(bench.ScaleConfig{Nodes: nodes, Out: *scaleOut})
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
	{"healsweep", "self-healing: goodput vs link/switch outage on a redundant fabric", func() error {
		outages, err := parseHealOutages(*healOutages)
		if err != nil {
			return err
		}
		t, err := bench.HealSweep(bench.HealConfigSweep{Outages: outages, Out: *healOut})
		if err != nil {
			return err
		}
		printTable(t)
		return nil
	}},
}

func main() {
	var (
		id       = flag.String("experiment", "", "experiment id to run (default: all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		tracePth = flag.String("trace", "", "write a Chrome trace_event JSON artifact here")
		metrPth  = flag.String("metrics", "", "write a metrics snapshot JSON artifact here")
		traceCap = flag.Int("trace-capacity", 0, "trace ring buffer size in events (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.id, e.what)
		}
		return
	}
	observing := *tracePth != "" || *metrPth != ""
	bench.SetObservability(bench.Observability{
		TracePath:     *tracePth,
		MetricsPath:   *metrPth,
		TraceCapacity: *traceCap,
	})
	ran := false
	for _, e := range experiments {
		if *id != "" && e.id != *id {
			continue
		}
		fmt.Printf("### %s — %s\n\n", e.id, e.what)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "vmmcbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		if observing {
			if s := bench.LastMetricsSummary(); s != "" {
				fmt.Printf("%s\n\n", s)
			}
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "vmmcbench: unknown experiment %q (try -list)\n", *id)
		os.Exit(2)
	}
}
