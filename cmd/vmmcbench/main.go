// Command vmmcbench regenerates the figures and tables of the paper's
// evaluation (§5-§7) on the simulated platform, plus the repo's
// extension sweeps.
//
// Usage:
//
//	vmmcbench                         # run everything
//	vmmcbench -experiment fig3        # one experiment
//	vmmcbench -deterministic          # the RESULTS.txt set (no scalesweep)
//	vmmcbench -list                   # list experiment ids
//	vmmcbench -experiment headline -trace t.json -metrics m.json
//
// Experiments live in the registry in registry.go; `-list` prints the
// ids. Deterministic experiments print only virtual-time-derived
// quantities, so their output is byte-identical across runs and
// machines; `-deterministic` runs exactly that set in registry order,
// which is how RESULTS.txt is regenerated (a golden test pins the
// checked-in file against the registry). scalesweep reports wall-clock
// events/sec and is the one exclusion.
//
// Sweeps read their own flags: scalesweep takes -scale-nodes and
// -scale-out (BENCH_scale.json), healsweep takes -heal-outages and
// -heal-out (BENCH_heal.json), collsweep takes -coll-nodes and
// -coll-out (BENCH_coll.json), servesweep takes -serve-rates,
// -serve-shards, -serve-requests and -serve-out (BENCH_serve.json),
// replicasweep takes -replica-r, -replica-rates, -replica-requests and
// -replica-out (BENCH_replica.json). Every sweep artifact is
// byte-identical across runs — each sweep re-runs a cell and fails on
// drift.
//
// With -trace, each run records structured events over virtual time and
// writes a Chrome trace_event JSON file (open in chrome://tracing or
// Perfetto). With -metrics, the run's final metrics snapshot (counters,
// gauges, utilizations) is written as JSON. Either flag also prints a
// short metrics summary after each experiment. Traces carry only virtual
// timestamps, so two runs of the same experiment produce byte-identical
// artifacts. See docs/OBSERVABILITY.md.
//
// Every experiment additionally streams its trace events through the
// bottleneck analyzer (internal/analysis); each sweep prints the
// analyzer's one-line verdict and embeds the full report in its JSON
// artifact. -analyze prints the ranked top-k resource table after each
// experiment, and -analyze-out writes the report JSON (last run wins).
// See docs/ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		id       = flag.String("experiment", "", "experiment id to run (default: all)")
		detOnly  = flag.Bool("deterministic", false, "run only experiments with byte-identical output (the RESULTS.txt set)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		tracePth = flag.String("trace", "", "write a Chrome trace_event JSON artifact here")
		metrPth  = flag.String("metrics", "", "write a metrics snapshot JSON artifact here")
		traceCap = flag.Int("trace-capacity", 0, "trace ring buffer size in events (0 = default)")
		analyze  = flag.Bool("analyze", false, "print the full bottleneck analysis table after each experiment")
		analyOut = flag.String("analyze-out", "", "write the bottleneck analysis report JSON here (last run wins)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			mark := " "
			if e.deterministic {
				mark = "*"
			}
			fmt.Printf("%s %-12s %s\n", mark, e.id, e.what)
		}
		fmt.Println("\n* = deterministic output, pinned in RESULTS.txt")
		return
	}
	observing := *tracePth != "" || *metrPth != ""
	bench.SetObservability(bench.Observability{
		TracePath:     *tracePth,
		MetricsPath:   *metrPth,
		TraceCapacity: *traceCap,
		AnalysisPath:  *analyOut,
	})
	ran, err := runExperiments(os.Stdout, *id, *detOnly, observing, *analyze)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmmcbench: %v\n", err)
		os.Exit(1)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "vmmcbench: unknown experiment %q (try -list)\n", *id)
		os.Exit(2)
	}
}
