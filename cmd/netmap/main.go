// Command netmap runs the Myrinet network-mapping phase (§4.3) on a
// configurable topology and dumps the route tables each node discovers.
//
// Usage:
//
//	netmap -hosts 4               # the paper's testbed: 4 PCs, one switch
//	netmap -hosts 10 -switches 2  # a chain of two 8-port switches
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hw"
	"repro/internal/myrinet"
	"repro/internal/sim"
)

func main() {
	var (
		hosts    = flag.Int("hosts", 4, "number of hosts")
		switches = flag.Int("switches", 0, "number of switches (0 = auto)")
		depth    = flag.Int("depth", 0, "probe depth limit (0 = auto)")
	)
	flag.Parse()

	eng := sim.NewEngine()
	net := myrinet.New(eng, hw.Default())

	nsw := *switches
	if nsw == 0 {
		nsw = (*hosts + 5) / 6
		if *hosts <= 8 {
			nsw = 1
		}
	}
	sws := make([]*myrinet.Switch, nsw)
	for i := range sws {
		sws[i] = net.AddSwitch(8)
		if i > 0 {
			if err := net.ConnectSwitches(sws[i-1], 7, sws[i], 6); err != nil {
				fatal(err)
			}
		}
	}
	perSwitch := 6
	if nsw == 1 {
		perSwitch = 8
	}
	for i := 0; i < *hosts; i++ {
		nic := net.AddNIC()
		if err := net.AttachNIC(nic, sws[i/perSwitch], i%perSwitch); err != nil {
			fatal(fmt.Errorf("attaching host %d: %w", i, err))
		}
	}

	d := *depth
	if d == 0 {
		d = nsw + 1
	}
	fmt.Printf("mapping %d hosts across %d switch(es), probe depth %d...\n", *hosts, nsw, d)
	m := myrinet.StartMapping(net, d, 20*sim.Microsecond)
	if err := eng.Run(); err != nil {
		fatal(err)
	}

	tables := m.Tables()
	dropped, _ := net.Dropped()
	fmt.Printf("mapping complete at t=%v; %d dead probes\n\n", eng.Now(), dropped)
	for src := 0; src < *hosts; src++ {
		fmt.Printf("node %d routes:\n", src)
		for dst := 0; dst < *hosts; dst++ {
			if dst == src {
				continue
			}
			if route, ok := tables[src][dst]; ok {
				fmt.Printf("  -> node %-3d via ports %v\n", dst, route)
			} else {
				fmt.Printf("  -> node %-3d UNREACHABLE\n", dst)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netmap:", err)
	os.Exit(1)
}
