// Benchmark harness: one testing.B target per figure and table of the
// paper's evaluation. The interesting output is the simulated metric
// reported next to each benchmark (sim-us/op, sim-MB/s), not the wall
// time: these run a deterministic discrete-event simulation whose virtual
// clock reproduces the paper's measurements.
//
//	go test -bench=. -benchmem
package vmmcnet_test

import (
	"testing"

	"repro/internal/baselines/fm"
	"repro/internal/baselines/gmapi"
	"repro/internal/baselines/pm"
	"repro/internal/baselines/testbed"
	"repro/internal/bench"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/rpc"
	"repro/internal/shrimp"
	"repro/internal/sim"
	"repro/internal/vmmc"
	"repro/internal/xdr"
)

// clamp keeps simulated iteration counts sane when testing.B scales up.
func clamp(n, lo, hi int) int {
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

// --- Figure 1 ---

func BenchmarkFig1HostDMA(b *testing.B) {
	var at4k float64
	for i := 0; i < b.N; i++ {
		series, err := bench.Fig1HostDMA()
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range series[0].Points {
			if pt.X == 4096 {
				at4k = pt.Y
			}
		}
	}
	b.ReportMetric(at4k, "sim-MB/s-at-4K")
}

// --- Figure 2 / headline latency ---

func BenchmarkFig2Latency(b *testing.B) {
	iters := clamp(b.N, 10, 2000)
	var lat float64
	err := bench.RunPair(nil, 4096, func(p *sim.Proc, pr *bench.Pair) {
		v, err := pr.PingPongLatency(p, 4, iters)
		if err != nil {
			b.Fatal(err)
		}
		lat = v
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(lat, "sim-us/msg")
	b.ReportMetric(9.8, "paper-us/msg")
}

// --- Figure 3 / headline bandwidth ---

func BenchmarkFig3Bandwidth(b *testing.B) {
	count := clamp(b.N, 8, 64)
	var bw float64
	err := bench.RunPair(nil, 1<<20, func(p *sim.Proc, pr *bench.Pair) {
		v, err := pr.OneWayBandwidth(p, 1<<20, count)
		if err != nil {
			b.Fatal(err)
		}
		bw = v
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportMetric(bw, "sim-MB/s")
	b.ReportMetric(80.4, "paper-MB/s")
}

func BenchmarkFig3Bidirectional(b *testing.B) {
	count := clamp(b.N, 6, 32)
	var bw float64
	err := bench.RunPair(nil, 1<<20, func(p *sim.Proc, pr *bench.Pair) {
		v, err := pr.BidirectionalBandwidth(p, 1<<20, count)
		if err != nil {
			b.Fatal(err)
		}
		bw = v
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(bw, "sim-MB/s-total")
	b.ReportMetric(91, "paper-MB/s-total")
}

// --- Figure 4 ---

func BenchmarkFig4SendOverheadSync(b *testing.B) {
	iters := clamp(b.N, 10, 2000)
	var v4, v4k float64
	err := bench.RunPair(nil, 8192, func(p *sim.Proc, pr *bench.Pair) {
		var err error
		if v4, err = pr.SendOverhead(p, 4, iters, true); err != nil {
			b.Fatal(err)
		}
		if v4k, err = pr.SendOverhead(p, 4096, clamp(iters, 10, 200), true); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v4, "sim-us/4B")
	b.ReportMetric(v4k, "sim-us/4KB")
}

func BenchmarkFig4SendOverheadAsync(b *testing.B) {
	iters := clamp(b.N, 10, 2000)
	var v4, v4k float64
	err := bench.RunPair(nil, 8192, func(p *sim.Proc, pr *bench.Pair) {
		var err error
		if v4, err = pr.SendOverhead(p, 4, iters, false); err != nil {
			b.Fatal(err)
		}
		if v4k, err = pr.SendOverhead(p, 4096, clamp(iters, 10, 200), false); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v4, "sim-us/4B")
	b.ReportMetric(v4k, "sim-us/4KB")
}

// --- Section 5.2 cost table ---

func BenchmarkTabHwPostRequest(b *testing.B) {
	eng := sim.NewEngine()
	c, err := vmmc.NewCluster(eng, vmmc.Options{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	var cost sim.Time
	iters := clamp(b.N, 1, 100000)
	c.Go("post", func(p *sim.Proc) {
		cpu := c.Nodes[0].CPU
		start := p.Now()
		for i := 0; i < iters; i++ {
			cpu.MMIOWriteWords(p, 5)
		}
		cost = (p.Now() - start) / sim.Time(iters)
	})
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cost.Micros(), "sim-us/post")
}

// --- Section 5.4 vRPC ---

func BenchmarkVRPCNull(b *testing.B) {
	iters := clamp(b.N, 10, 2000)
	rtt := runVRPC(b, func(p *sim.Proc, c *rpc.Client) float64 {
		if err := c.Call(p, 0x20000042, 1, 0, nil, nil); err != nil {
			b.Fatal(err)
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := c.Call(p, 0x20000042, 1, 0, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
		return (p.Now() - start).Micros() / float64(iters)
	})
	b.ReportMetric(rtt, "sim-us/call")
	b.ReportMetric(66, "paper-us/call")
}

func BenchmarkVRPCBulk(b *testing.B) {
	iters := clamp(b.N, 5, 100)
	const size = 100 << 10
	bw := runVRPC(b, func(p *sim.Proc, c *rpc.Client) float64 {
		payload := make([]byte, size)
		call := func() error {
			return c.Call(p, 0x20000042, 1, 1,
				func(e *xdr.Encoder) { e.PutOpaque(payload) },
				func(d *xdr.Decoder) error { _, err := d.Opaque(1 << 20); return err })
		}
		if err := call(); err != nil {
			b.Fatal(err)
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := call(); err != nil {
				b.Fatal(err)
			}
		}
		perDir := (p.Now() - start).Seconds() / float64(2*iters)
		return size / perDir / 1e6
	})
	b.ReportMetric(bw, "sim-MB/s")
}

func runVRPC(b *testing.B, fn func(*sim.Proc, *rpc.Client) float64) float64 {
	b.Helper()
	eng := sim.NewEngine()
	cl, err := vmmc.NewCluster(eng, vmmc.Options{Nodes: 2, MemBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	var out float64
	cl.Go("vrpc", func(p *sim.Proc) {
		sproc, err := cl.Nodes[1].NewProcess(p)
		if err != nil {
			b.Fatal(err)
		}
		srv, err := rpc.NewServer(p, sproc, 1)
		if err != nil {
			b.Fatal(err)
		}
		srv.Register(0x20000042, 1, 0, func(p *sim.Proc, args *xdr.Decoder, res *xdr.Encoder) uint32 {
			return xdr.AcceptSuccess
		})
		srv.Register(0x20000042, 1, 1, func(p *sim.Proc, args *xdr.Decoder, res *xdr.Encoder) uint32 {
			data, err := args.Opaque(1 << 20)
			if err != nil {
				return xdr.AcceptGarbageArgs
			}
			res.PutOpaque(data)
			return xdr.AcceptSuccess
		})
		srv.Start()
		cproc, err := cl.Nodes[0].NewProcess(p)
		if err != nil {
			b.Fatal(err)
		}
		client, err := rpc.Dial(p, cproc, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		out = fn(p, client)
	})
	if err := cl.Start(); err != nil {
		b.Fatal(err)
	}
	return out
}

// --- Section 6: SHRIMP vs Myrinet ---

func BenchmarkShrimpVsMyrinet(b *testing.B) {
	eng := sim.NewEngine()
	sys := shrimp.New(eng, hw.DefaultSHRIMP(), 2, 16<<20)
	iters := clamp(b.N, 5, 500)
	var lat, bw float64
	eng.Go("bench", func(p *sim.Proc) {
		recv := sys.Nodes[1].NewProcess()
		send := sys.Nodes[0].NewProcess()
		buf, _ := recv.Malloc(64 * mem.PageSize)
		if err := recv.Export(p, 1, buf, 64*mem.PageSize, nil); err != nil {
			b.Fatal(err)
		}
		dest, _, err := send.Import(p, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		src, _ := send.Malloc(64 * mem.PageSize)
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := send.SendDeliberate(p, src, dest, 4); err != nil {
				b.Fatal(err)
			}
		}
		lat = (p.Now() - start).Micros() / float64(iters)
		start = p.Now()
		if err := send.SendDeliberate(p, src, dest, 64*mem.PageSize); err != nil {
			b.Fatal(err)
		}
		bw = float64(64*mem.PageSize) / (p.Now() - start).Seconds() / 1e6
	})
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(lat, "sim-us/1word-shrimp")
	b.ReportMetric(bw, "sim-MB/s-shrimp")
}

// --- Section 7: related work ---

func BenchmarkRelatedWorkFM(b *testing.B) {
	eng := sim.NewEngine()
	r, err := testbed.New(eng, hw.Default())
	if err != nil {
		b.Fatal(err)
	}
	sys := fm.New(eng, r)
	iters := clamp(b.N, 5, 500)
	var lat float64
	eng.Go("fm", func(p *sim.Proc) {
		sys.Eps[0].Send(p, make([]byte, 8))
		sys.Eps[1].Extract(p, 1)
		eng.Go("echo", func(bp *sim.Proc) {
			for i := 0; i < iters; i++ {
				m := sys.Eps[1].Extract(bp, 1)
				sys.Eps[1].Send(bp, m[0])
			}
		})
		start := p.Now()
		for i := 0; i < iters; i++ {
			sys.Eps[0].Send(p, make([]byte, 8))
			sys.Eps[0].Extract(p, 1)
		}
		lat = (p.Now() - start).Micros() / float64(2*iters)
	})
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(lat, "sim-us/msg")
	b.ReportMetric(10.7, "paper-us/msg")
}

func BenchmarkRelatedWorkPM(b *testing.B) {
	eng := sim.NewEngine()
	r, err := testbed.New(eng, hw.Default())
	if err != nil {
		b.Fatal(err)
	}
	sys := pm.New(eng, r)
	iters := clamp(b.N, 5, 500)
	var lat float64
	eng.Go("pm", func(p *sim.Proc) {
		ch, err := sys.OpenChannel(1)
		if err != nil {
			b.Fatal(err)
		}
		ch.Send(p, 0, make([]byte, 8), false)
		ch.Recv(p, 1)
		eng.Go("echo", func(bp *sim.Proc) {
			for i := 0; i < iters; i++ {
				m := ch.Recv(bp, 1)
				ch.Send(bp, 1, m, false)
			}
		})
		start := p.Now()
		for i := 0; i < iters; i++ {
			ch.Send(p, 0, make([]byte, 8), false)
			ch.Recv(p, 0)
		}
		lat = (p.Now() - start).Micros() / float64(2*iters)
	})
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(lat, "sim-us/msg")
	b.ReportMetric(7.2, "paper-us/msg")
}

func BenchmarkRelatedWorkGMAPI(b *testing.B) {
	eng := sim.NewEngine()
	r, err := testbed.New(eng, hw.Default())
	if err != nil {
		b.Fatal(err)
	}
	sys := gmapi.New(eng, r)
	iters := clamp(b.N, 5, 200)
	var lat float64
	eng.Go("gmapi", func(p *sim.Proc) {
		sys.Eps[0].Send(p, make([]byte, 4))
		sys.Eps[1].Recv(p)
		eng.Go("echo", func(bp *sim.Proc) {
			for i := 0; i < iters; i++ {
				m := sys.Eps[1].Recv(bp)
				sys.Eps[1].Send(bp, m)
			}
		})
		start := p.Now()
		for i := 0; i < iters; i++ {
			sys.Eps[0].Send(p, []byte{1, 2, 3, 4})
			sys.Eps[0].Recv(p)
		}
		lat = (p.Now() - start).Micros() / float64(2*iters)
	})
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(lat, "sim-us/msg")
	b.ReportMetric(63, "paper-us/msg")
}

// --- Ablations (design choices called out in DESIGN.md) ---

func benchAblationBandwidth(b *testing.B, mutate func(*hw.Profile)) float64 {
	b.Helper()
	prof := hw.Default()
	mutate(&prof)
	count := clamp(b.N, 6, 24)
	var bw float64
	err := bench.RunPair(&prof, 1<<20, func(p *sim.Proc, pr *bench.Pair) {
		v, err := pr.OneWayBandwidth(p, 1<<20, count)
		if err != nil {
			b.Fatal(err)
		}
		bw = v
	})
	if err != nil {
		b.Fatal(err)
	}
	return bw
}

func BenchmarkAblationPipelineOn(b *testing.B) {
	bw := benchAblationBandwidth(b, func(p *hw.Profile) {})
	b.ReportMetric(bw, "sim-MB/s")
}

func BenchmarkAblationPipelineOff(b *testing.B) {
	bw := benchAblationBandwidth(b, func(p *hw.Profile) {
		p.PipelineChunks = false
		p.PrecomputeHeaders = false
	})
	b.ReportMetric(bw, "sim-MB/s")
}

func BenchmarkAblationTightLoopOff(b *testing.B) {
	bw := benchAblationBandwidth(b, func(p *hw.Profile) { p.TightSendLoop = false })
	b.ReportMetric(bw, "sim-MB/s")
}

func BenchmarkAblationThreshold64(b *testing.B) {
	prof := hw.Default()
	prof.ShortSendMax = 64
	iters := clamp(b.N, 10, 500)
	var v float64
	err := bench.RunPair(&prof, 8192, func(p *sim.Proc, pr *bench.Pair) {
		var err error
		if v, err = pr.SendOverhead(p, 128, iters, true); err != nil {
			b.Fatal(err)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "sim-us/128B-sync")
}

func BenchmarkAblationColdTLB(b *testing.B) {
	const size = 64 * mem.PageSize
	var cold float64
	err := bench.RunPair(nil, size, func(p *sim.Proc, pr *bench.Pair) {
		buf, err := pr.A.Malloc(size)
		if err != nil {
			b.Fatal(err)
		}
		start := p.Now()
		if err := pr.A.SendMsgSync(p, buf, pr.ToB, size, vmmc.SendOptions{}); err != nil {
			b.Fatal(err)
		}
		cold = (p.Now() - start).Micros()
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cold, "sim-us/cold-256KB")
}

func BenchmarkAblationSenders(b *testing.B) {
	iters := clamp(b.N, 10, 500)
	var lat float64
	err := bench.RunPair(nil, 4096, func(p *sim.Proc, pr *bench.Pair) {
		for i := 0; i < 4; i++ {
			if _, err := pr.C.Nodes[0].NewProcess(p); err != nil {
				b.Fatal(err)
			}
		}
		v, err := pr.PingPongLatency(p, 4, iters)
		if err != nil {
			b.Fatal(err)
		}
		lat = v
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(lat, "sim-us/msg-5senders")
}
